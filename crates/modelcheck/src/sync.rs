//! Shim synchronization primitives.
//!
//! With the `modelcheck` feature on (the default for this crate), every
//! operation on these types is a scheduling point driven by
//! [`crate::exec`]'s controller: the calling thread parks until the
//! explorer hands it the baton, performs exactly one observable step
//! against the central model state, and hands the baton back. Blocking
//! (`lock` on a held mutex, `wait` on a condvar) is modeled as a status
//! the explorer can see — which is precisely what makes deadlocks
//! detectable rather than merely hang-inducing.
//!
//! With `--no-default-features`, each type is a zero-cost newtype over
//! its `std::sync` counterpart, so protocol code written against these
//! shims runs at full speed outside the model.
//!
//! Memory-model note: the shims are sequentially consistent — every op
//! is a global step on the central state. That is stronger than the
//! hardware model, which is the right direction for checking
//! lock-protected protocol cores (the serve layer has no lock-free
//! algorithms; its atomics are flags and counters).

#[cfg(feature = "modelcheck")]
mod modeled {
    use std::hash::{Hash, Hasher};
    use std::sync::Arc;

    use crate::exec::{current_thread, ExecInner, Status};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut s = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    fn me() -> usize {
        current_thread().expect("modelcheck shim used outside a model thread")
    }

    /// A model mutex. `T: Hash` so the protected value feeds the
    /// explorer's state key: two interleavings that leave the core in
    /// the same state merge in the search tree.
    pub struct Mutex<T> {
        exec: Arc<ExecInner>,
        id: usize,
        // Uncontended by construction: model-level ownership is
        // exclusive before this lock is ever touched.
        data: Arc<std::sync::Mutex<T>>,
    }

    impl<T> Clone for Mutex<T> {
        fn clone(&self) -> Self {
            Mutex { exec: Arc::clone(&self.exec), id: self.id, data: Arc::clone(&self.data) }
        }
    }

    impl<T: Hash> Mutex<T> {
        pub(crate) fn register(exec: &Arc<ExecInner>, value: T) -> Self {
            let id = exec.register_mutex(hash_of(&value));
            Mutex { exec: Arc::clone(exec), id, data: Arc::new(std::sync::Mutex::new(value)) }
        }

        /// Acquire. One scheduling point; blocks (as a model status) if
        /// another model thread owns the mutex.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let idx = me();
            self.exec.op(idx, "lock", self.id, |c| {
                let mx = &mut c.mutexes[self.id];
                if mx.owner.is_none() {
                    mx.owner = Some(idx);
                    Some(())
                } else {
                    c.threads[idx].status = Status::BlockedOnMutex(self.id);
                    None
                }
            });
            MutexGuard { m: self, inner: Some(self.data.lock().unwrap()) }
        }

        pub(crate) fn release(&self, idx: usize, new_hash: u64) {
            self.exec.op(idx, "unlock", self.id, |c| {
                let mx = &mut c.mutexes[self.id];
                debug_assert_eq!(mx.owner, Some(idx), "release by non-owner");
                mx.owner = None;
                mx.val_hash = new_hash;
                // Everyone blocked on this mutex races to reacquire.
                for t in c.threads.iter_mut() {
                    if t.status == Status::BlockedOnMutex(self.id) {
                        t.status = Status::Runnable;
                    }
                }
                Some(())
            });
        }
    }

    /// Guard for a model mutex. Dropping it is a scheduling point (the
    /// release is an observable step that wakes blocked threads).
    pub struct MutexGuard<'a, T: Hash> {
        m: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T: Hash> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present until drop")
        }
    }

    impl<T: Hash> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present until drop")
        }
    }

    impl<T: Hash> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Hash before releasing the data lock: model ownership is
            // still ours, so no other thread can be mutating.
            let new_hash = hash_of(&**self.inner.as_ref().expect("guard present"));
            let idx = me();
            self.inner = None;
            self.m.release(idx, new_hash);
        }
    }

    /// A model condvar. `notify_one` is modeled as `notify_all` (sound
    /// for wait-in-a-loop callers: extra wakeups re-check the predicate
    /// and go back to sleep). Spurious wakeups are not injected.
    pub struct Condvar {
        exec: Arc<ExecInner>,
        id: usize,
    }

    impl Clone for Condvar {
        fn clone(&self) -> Self {
            Condvar { exec: Arc::clone(&self.exec), id: self.id }
        }
    }

    impl Condvar {
        pub(crate) fn register(exec: &Arc<ExecInner>) -> Self {
            Condvar { exec: Arc::clone(exec), id: exec.register_condvar() }
        }

        /// Atomically release the guard's mutex and sleep on this
        /// condvar; reacquire before returning. The release+sleep is a
        /// single scheduling point — there is no lost-wakeup window, as
        /// with a real condvar.
        pub fn wait<'a, T: Hash>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let idx = me();
            let m = guard.m;
            let mid = m.id;
            // Hash + drop the data guard by hand: the model release is
            // folded into the wait op below, not a separate step.
            let mut g = guard;
            let new_hash = hash_of(&*g);
            g.inner = None;
            std::mem::forget(g);
            self.exec.op(idx, "wait", self.id, |c| {
                let mx = &mut c.mutexes[mid];
                debug_assert_eq!(mx.owner, Some(idx), "wait without holding the mutex");
                mx.owner = None;
                mx.val_hash = new_hash;
                for t in c.threads.iter_mut() {
                    if t.status == Status::BlockedOnMutex(mid) {
                        t.status = Status::Runnable;
                    }
                }
                c.cv_waiters[self.id].push(idx);
                c.threads[idx].status = Status::BlockedOnCondvar(self.id);
                Some(())
            });
            // Notified (status set Runnable by a notify op): reacquire.
            m.lock()
        }

        pub fn notify_one(&self) {
            self.notify_all();
        }

        pub fn notify_all(&self) {
            let idx = me();
            self.exec.op(idx, "notify", self.id, |c| {
                let waiters = std::mem::take(&mut c.cv_waiters[self.id]);
                for w in waiters {
                    debug_assert_eq!(c.threads[w].status, Status::BlockedOnCondvar(self.id));
                    c.threads[w].status = Status::Runnable;
                }
                Some(())
            });
        }
    }

    /// A model atomic counter. Sequentially consistent; every access is
    /// a scheduling point. No `Ordering` parameters — the model has only
    /// one ordering, and taking the std signature would imply relaxed
    /// semantics the explorer does not simulate.
    pub struct AtomicUsize {
        exec: Arc<ExecInner>,
        id: usize,
    }

    impl Clone for AtomicUsize {
        fn clone(&self) -> Self {
            AtomicUsize { exec: Arc::clone(&self.exec), id: self.id }
        }
    }

    impl AtomicUsize {
        pub(crate) fn register(exec: &Arc<ExecInner>, v: usize) -> Self {
            AtomicUsize { exec: Arc::clone(exec), id: exec.register_cell(v) }
        }

        pub fn load(&self) -> usize {
            let idx = me();
            self.exec.op(idx, "load", self.id, |c| Some(c.cells[self.id]))
        }

        pub fn store(&self, v: usize) {
            let idx = me();
            self.exec.op(idx, "store", self.id, |c| {
                c.cells[self.id] = v;
                Some(())
            });
        }

        /// Returns the previous value.
        pub fn fetch_add(&self, v: usize) -> usize {
            let idx = me();
            self.exec.op(idx, "fetch_add", self.id, |c| {
                let old = c.cells[self.id];
                c.cells[self.id] = old.wrapping_add(v);
                Some(old)
            })
        }

        /// Single-step compare-exchange; returns `Ok(old)` on success,
        /// `Err(actual)` otherwise.
        pub fn compare_exchange(&self, expect: usize, new: usize) -> Result<usize, usize> {
            let idx = me();
            self.exec.op(idx, "cas", self.id, |c| {
                let old = c.cells[self.id];
                Some(if old == expect {
                    c.cells[self.id] = new;
                    Ok(old)
                } else {
                    Err(old)
                })
            })
        }
    }
}

#[cfg(feature = "modelcheck")]
pub use modeled::{AtomicUsize, Condvar, Mutex, MutexGuard};

/// Zero-cost std passthroughs, compiled with `--no-default-features`.
/// Same API surface as the modeled shims so instrumented code needs no
/// cfgs of its own.
#[cfg(not(feature = "modelcheck"))]
mod passthrough {
    use std::sync::PoisonError;

    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
        }
    }

    pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    pub struct Condvar(std::sync::Condvar);

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard(self.0.wait(guard.0).unwrap_or_else(PoisonError::into_inner))
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Sequentially consistent passthrough: the modeled API has no
    /// `Ordering` parameters, so the strongest ordering is the only
    /// faithful translation.
    pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
        }

        pub fn load(&self) -> usize {
            self.0.load(std::sync::atomic::Ordering::SeqCst)
        }

        pub fn store(&self, v: usize) {
            self.0.store(v, std::sync::atomic::Ordering::SeqCst)
        }

        pub fn fetch_add(&self, v: usize) -> usize {
            self.0.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
        }

        pub fn compare_exchange(&self, expect: usize, new: usize) -> Result<usize, usize> {
            self.0.compare_exchange(
                expect,
                new,
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
            )
        }
    }
}

#[cfg(not(feature = "modelcheck"))]
pub use passthrough::{AtomicUsize, Condvar, Mutex, MutexGuard};
