//! The interleaving explorer: a cooperative scheduler over real OS
//! threads plus a DFS over scheduling decisions.
//!
//! ## Execution model
//!
//! Each *execution* runs the model once: the closure passed to
//! [`explore`] builds fresh shim state through an [`Env`] and registers
//! thread bodies; the bodies run on real OS threads, but every shim
//! operation first waits for the controller to hand it the baton (one
//! mutex + condvar shared by the whole execution, taskpool's gate
//! pattern). The controller therefore observes a quiescent snapshot of
//! the shared state between any two operations and *chooses* which
//! thread performs the next one. Code between shim operations runs
//! unscheduled — it touches only thread-local data, so its effects on
//! the model are captured entirely by its next operation.
//!
//! ## The search
//!
//! A schedule is the sequence of thread choices at each decision point.
//! The explorer maintains a DFS stack of frames (`candidates`, `next`);
//! each execution replays the stack's current prefix, then extends it
//! greedily (default choice: keep running the current thread — a switch
//! away from a still-runnable thread costs one unit of the preemption
//! budget, the classic CHESS bound). After the execution, the deepest
//! frame with an unexplored sibling advances and everything below it is
//! discarded.
//!
//! At each *fresh* decision point the full shared state — cells, lock
//! owners and value hashes, waiter sets, per-thread op-history hashes —
//! is hashed; a state seen before does not branch again (its subtree
//! was already enumerated from the first occurrence). The visited-set
//! size is reported as `distinct_states`.
//!
//! ## Verdicts
//!
//! Deadlock: no thread runnable, some thread unfinished. Panic: a model
//! body's assertion fired. Both abort the execution (blocked threads are
//! unwound with a private panic payload; shim guards release their locks
//! during that unwind) and are reported with the offending schedule.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

/// Panic payload used to unwind model threads when an execution aborts
/// (deadlock found, sibling panicked, step cap hit). Never escapes
/// [`explore`].
pub(crate) struct Abort;

thread_local! {
    static TL_IDX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The model thread index of the calling thread, if it is one.
pub(crate) fn current_thread() -> Option<usize> {
    TL_IDX.with(|c| c.get())
}

/// Search bounds. The defaults explore small protocol models (3–4
/// threads, a handful of operations each) exhaustively in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum number of *preemptions* per schedule: switches away from
    /// a thread that could have kept running. Blocking switches are
    /// free. (The CHESS result: almost all concurrency bugs manifest
    /// within 2–3 preemptions.)
    pub preemption_budget: usize,
    /// Hard cap on executions; hitting it sets [`Report::truncated`].
    pub max_executions: u64,
    /// Hard cap on scheduling decisions within one execution — a
    /// backstop against models with unbounded loops.
    pub max_steps: usize,
    /// How many deadlock/panic traces to collect before stopping early.
    pub max_traces: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_budget: 4,
            max_executions: 200_000,
            max_steps: 10_000,
            max_traces: 8,
        }
    }
}

/// A failing schedule: the exact sequence of thread choices, replayable
/// by construction (the scheduler is deterministic given the choices),
/// plus a human-readable account of where every thread stood.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Thread index chosen at each decision point.
    pub schedule: Vec<usize>,
    /// What happened, with per-thread positions.
    pub detail: String,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n  schedule: {:?}", self.detail, self.schedule)
    }
}

/// What the exploration covered and what it found.
#[derive(Debug)]
pub struct Report {
    /// Complete executions (distinct interleavings) run.
    pub executions: u64,
    /// Distinct shared-state snapshots seen at decision points — the
    /// size of the pruning set, a lower bound on the state space.
    pub distinct_states: u64,
    /// Schedules that ended with unfinished, unrunnable threads.
    pub deadlocks: Vec<Trace>,
    /// Schedules on which a model assertion fired.
    pub panics: Vec<Trace>,
    /// True if a bound (executions, steps, traces) cut the search short.
    pub truncated: bool,
}

impl Report {
    /// No deadlocks, no panics.
    pub fn is_clean(&self) -> bool {
        self.deadlocks.is_empty() && self.panics.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions, {} distinct states, {} deadlock(s), {} panic(s){}",
            self.executions,
            self.distinct_states,
            self.deadlocks.len(),
            self.panics.len(),
            if self.truncated { " [truncated]" } else { "" }
        )
    }
}

// ---------------------------------------------------------------------------
// Shared execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Status {
    Runnable,
    BlockedOnMutex(usize),
    BlockedOnCondvar(usize),
    Finished,
}

pub(crate) struct TState {
    pub(crate) status: Status,
    /// Rolling hash of this thread's operation history — a proxy for
    /// its program counter and op-derived local state.
    op_hash: u64,
    steps: u64,
    last_op: (&'static str, usize),
}

impl TState {
    fn new() -> Self {
        TState {
            status: Status::Runnable,
            op_hash: 0,
            steps: 0,
            last_op: ("spawn", 0),
        }
    }
}

pub(crate) struct MxState {
    pub(crate) owner: Option<usize>,
    /// Hash of the protected value, updated at each release, so the
    /// decision-point state key reflects core contents.
    pub(crate) val_hash: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Turn {
    Controller,
    Thread(usize),
}

pub(crate) struct Central {
    turn: Turn,
    abort: bool,
    pub(crate) threads: Vec<TState>,
    pub(crate) mutexes: Vec<MxState>,
    pub(crate) cv_waiters: Vec<Vec<usize>>,
    pub(crate) cells: Vec<usize>,
    schedule: Vec<usize>,
    panic_notes: Vec<String>,
}

pub(crate) struct ExecInner {
    central: Mutex<Central>,
    cv: Condvar,
}

fn mix(h: u64, kind: &'static str, id: usize) -> u64 {
    let mut s = DefaultHasher::new();
    (h, kind, id).hash(&mut s);
    s.finish()
}

impl ExecInner {
    fn new() -> Self {
        ExecInner {
            central: Mutex::new(Central {
                turn: Turn::Controller,
                abort: false,
                threads: Vec::new(),
                mutexes: Vec::new(),
                cv_waiters: Vec::new(),
                cells: Vec::new(),
                schedule: Vec::new(),
                panic_notes: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn guard(&self) -> MutexGuard<'_, Central> {
        self.central.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Perform one scheduled operation for model thread `idx`.
    ///
    /// `attempt` inspects/updates the shared state and returns
    /// `Some(result)` if the operation can proceed now; returning `None`
    /// (after marking the thread blocked) yields the baton and retries
    /// when the thread is next scheduled.
    pub(crate) fn op<R>(
        &self,
        idx: usize,
        kind: &'static str,
        id: usize,
        mut attempt: impl FnMut(&mut Central) -> Option<R>,
    ) -> R {
        let mut g = self.guard();
        loop {
            if g.abort {
                if thread::panicking() {
                    // Unwind path: shim guards release their locks here
                    // without waiting for a schedule slot (the scheduler
                    // is tearing the execution down). Releases always
                    // succeed.
                    if let Some(r) = attempt(&mut g) {
                        self.cv.notify_all();
                        return r;
                    }
                    unreachable!("blocking shim op during abort unwind");
                }
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.turn == Turn::Thread(idx) {
                match attempt(&mut g) {
                    Some(r) => {
                        let t = &mut g.threads[idx];
                        t.steps += 1;
                        t.op_hash = mix(t.op_hash, kind, id);
                        t.last_op = (kind, id);
                        g.turn = Turn::Controller;
                        self.cv.notify_all();
                        return r;
                    }
                    None => {
                        // Blocked: the probe is itself an observable step.
                        let t = &mut g.threads[idx];
                        t.steps += 1;
                        t.op_hash = mix(t.op_hash, "blocked", id);
                        t.last_op = (kind, id);
                        g.turn = Turn::Controller;
                        self.cv.notify_all();
                    }
                }
            } else {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Registration hooks used by [`Env`] during model construction
    /// (single-threaded; ids are assigned in construction order, so
    /// they are stable across executions).
    pub(crate) fn register_mutex(&self, init_hash: u64) -> usize {
        let mut g = self.guard();
        g.mutexes.push(MxState { owner: None, val_hash: init_hash });
        g.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut g = self.guard();
        g.cv_waiters.push(Vec::new());
        g.cv_waiters.len() - 1
    }

    pub(crate) fn register_cell(&self, v: usize) -> usize {
        let mut g = self.guard();
        g.cells.push(v);
        g.cells.len() - 1
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_thread(exec: Arc<ExecInner>, idx: usize, body: Box<dyn FnOnce() + Send>) {
    TL_IDX.with(|c| c.set(Some(idx)));
    // First scheduling point before any body code runs, so thread
    // startup order is itself explored.
    exec.op(idx, "start", idx, |_| Some(()));
    let result = catch_unwind(AssertUnwindSafe(body));
    let mut g = exec.guard();
    match result {
        Ok(()) => {}
        Err(p) if p.is::<Abort>() => {}
        Err(p) => {
            let msg = payload_str(p.as_ref());
            g.panic_notes.push(format!("thread {idx} panicked: {msg}"));
            g.abort = true;
        }
    }
    g.threads[idx].status = Status::Finished;
    // The controller may be waiting for this thread to take a turn it
    // will never take.
    if g.turn == Turn::Thread(idx) {
        g.turn = Turn::Controller;
    }
    drop(g);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Environment handed to the model closure
// ---------------------------------------------------------------------------

/// Per-execution construction context: creates shim primitives (see
/// [`crate::sync`]) and registers model thread bodies. The model closure
/// receives a fresh `Env` for every execution, so all state starts
/// identical and the schedule is the only varying input.
pub struct Env {
    pub(crate) exec: Arc<ExecInner>,
    pub(crate) bodies: Vec<Box<dyn FnOnce() + Send>>,
}

impl Env {
    /// A model mutex protecting `value`. `T: Hash` so the protected
    /// state feeds the decision-point state key at each release.
    pub fn mutex<T: Hash + Send + 'static>(&mut self, value: T) -> crate::sync::Mutex<T> {
        crate::sync::Mutex::register(&self.exec, value)
    }

    /// A model condvar. `notify_one` is modeled as `notify_all`; no
    /// spurious wakeups are injected — sound for wait-in-a-loop users.
    pub fn condvar(&mut self) -> crate::sync::Condvar {
        crate::sync::Condvar::register(&self.exec)
    }

    /// A model atomic cell. Every access is a scheduling point; the
    /// model is sequentially consistent.
    pub fn atomic(&mut self, v: usize) -> crate::sync::AtomicUsize {
        crate::sync::AtomicUsize::register(&self.exec, v)
    }

    /// Register a model thread. Threads start in index order only if the
    /// schedule says so — startup interleavings are explored too.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'static) {
        self.bodies.push(Box::new(f));
    }
}

// ---------------------------------------------------------------------------
// The DFS driver
// ---------------------------------------------------------------------------

struct Frame {
    candidates: Vec<usize>,
    next: usize,
}

enum DriveEnd {
    Done,
    Deadlock(Trace),
    Aborted,
    Truncated,
}

fn state_key(g: &Central, preempts: usize) -> u64 {
    let mut s = DefaultHasher::new();
    preempts.hash(&mut s);
    for t in &g.threads {
        t.status.hash(&mut s);
        t.op_hash.hash(&mut s);
        t.steps.hash(&mut s);
    }
    for m in &g.mutexes {
        m.owner.hash(&mut s);
        m.val_hash.hash(&mut s);
    }
    g.cv_waiters.hash(&mut s);
    g.cells.hash(&mut s);
    s.finish()
}

fn describe(g: &Central, what: &str) -> Trace {
    let mut detail = String::from(what);
    for (i, t) in g.threads.iter().enumerate() {
        let st = match t.status {
            Status::Runnable => "runnable".to_string(),
            Status::BlockedOnMutex(m) => format!("blocked on mutex {m}"),
            Status::BlockedOnCondvar(c) => format!("waiting on condvar {c}"),
            Status::Finished => "finished".to_string(),
        };
        detail.push_str(&format!(
            "\n  thread {i}: {st}, {} step(s), last op {}({})",
            t.steps, t.last_op.0, t.last_op.1
        ));
    }
    Trace { schedule: g.schedule.clone(), detail }
}

/// Drive one execution: replay the stack prefix, extend it at fresh
/// decision points, and return how the execution ended.
fn drive(
    exec: &ExecInner,
    cfg: &Config,
    stack: &mut Vec<Frame>,
    visited: &mut HashSet<u64>,
) -> DriveEnd {
    let mut cursor = 0usize;
    let mut preempts = 0usize;
    let mut current: Option<usize> = None;
    let mut g = exec.guard();
    loop {
        if g.abort {
            return DriveEnd::Aborted;
        }
        let runnable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let unfinished = g.threads.iter().any(|t| t.status != Status::Finished);
            if !unfinished {
                return DriveEnd::Done;
            }
            return DriveEnd::Deadlock(describe(
                &g,
                "deadlock: every unfinished thread is blocked",
            ));
        }
        if g.schedule.len() >= cfg.max_steps {
            return DriveEnd::Truncated;
        }

        let current_runnable = current.is_some_and(|c| runnable.contains(&c));
        let default = if current_runnable {
            current.unwrap()
        } else {
            runnable[0]
        };
        let choice = if cursor < stack.len() {
            stack[cursor].candidates[stack[cursor].next]
        } else {
            // Fresh decision point: branch unless this exact state was
            // already expanded somewhere in the tree.
            let key = state_key(&g, preempts);
            let mut candidates = vec![default];
            if runnable.len() > 1 && visited.insert(key) {
                for &r in &runnable {
                    // A switch away from a runnable current thread
                    // spends preemption budget; if the current thread
                    // is blocked or finished, switching is free.
                    let costs_preemption = current_runnable && r != default;
                    if r != default && (!costs_preemption || preempts < cfg.preemption_budget)
                    {
                        candidates.push(r);
                    }
                }
            } else if runnable.len() > 1 {
                // Seen state: take the default, no new branch.
            } else {
                // Single runnable thread: forced move, but still record
                // the state so distinct_states counts it.
                visited.insert(key);
            }
            stack.push(Frame { candidates, next: 0 });
            default_choice(stack)
        };
        if current_runnable && choice != current.unwrap() {
            preempts += 1;
        }
        current = Some(choice);
        cursor += 1;

        // Hand the baton to `choice` and wait for it to complete one op
        // (or finish).
        g.schedule.push(choice);
        g.turn = Turn::Thread(choice);
        exec.cv.notify_all();
        while g.turn != Turn::Controller {
            if g.threads[choice].status == Status::Finished {
                g.turn = Turn::Controller;
                break;
            }
            g = exec.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn default_choice(stack: &[Frame]) -> usize {
    let top = stack.last().expect("frame just pushed");
    top.candidates[top.next]
}

/// Explore every schedule of the model within [`Config`]'s bounds.
///
/// The closure is called once per execution with a fresh [`Env`]; it
/// must construct the same primitives in the same order and register
/// the same thread bodies every time (the replay machinery depends on
/// determinism — which is also why `Date`/RNG have no place in models).
pub fn explore<F: Fn(&mut Env)>(cfg: Config, model: F) -> Report {
    let mut stack: Vec<Frame> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut report = Report {
        executions: 0,
        distinct_states: 0,
        deadlocks: Vec::new(),
        panics: Vec::new(),
        truncated: false,
    };
    loop {
        if report.executions >= cfg.max_executions {
            report.truncated = true;
            break;
        }
        if report.deadlocks.len() + report.panics.len() >= cfg.max_traces {
            report.truncated = true;
            break;
        }
        report.executions += 1;

        let exec = Arc::new(ExecInner::new());
        let mut env = Env { exec: Arc::clone(&exec), bodies: Vec::new() };
        model(&mut env);
        let bodies = std::mem::take(&mut env.bodies);
        assert!(!bodies.is_empty(), "model registered no threads");
        exec.guard().threads = bodies.iter().map(|_| TState::new()).collect();

        let handles: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let e = Arc::clone(&exec);
                thread::Builder::new()
                    .name(format!("model-{i}"))
                    .stack_size(128 * 1024)
                    .spawn(move || run_thread(e, i, b))
                    .expect("spawn model thread")
            })
            .collect();

        let end = drive(&exec, &cfg, &mut stack, &mut visited);

        // Tear down: unwind anything still parked, then join.
        {
            let mut g = exec.guard();
            g.abort = true;
            g.turn = Turn::Controller;
            drop(g);
            exec.cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }

        let g = exec.guard();
        match end {
            DriveEnd::Done => {}
            DriveEnd::Deadlock(trace) => report.deadlocks.push(trace),
            DriveEnd::Truncated => report.truncated = true,
            DriveEnd::Aborted => {}
        }
        for note in &g.panic_notes {
            report.panics.push(Trace {
                schedule: g.schedule.clone(),
                detail: note.clone(),
            });
        }
        drop(g);

        // Advance the DFS: deepest frame with an unexplored sibling.
        loop {
            match stack.last_mut() {
                None => {
                    report.distinct_states = visited.len() as u64;
                    return report;
                }
                Some(top) => {
                    top.next += 1;
                    if top.next < top.candidates.len() {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
    report.distinct_states = visited.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_thread_explores_exactly_one_schedule() {
        let report = explore(Config::default(), |env| {
            let a = env.atomic(0);
            env.spawn(move || {
                a.store(1);
                assert_eq!(a.load(), 1);
            });
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.executions, 1);
        assert!(!report.truncated);
    }

    #[test]
    fn two_racing_increments_visit_both_orders_and_the_lost_update() {
        // load+store (non-atomic increment): both the clean run and the
        // lost update must be among the explored outcomes. Observations
        // are collected outside the model in a plain mutex.
        let saw = Arc::new(Mutex::new((false, false)));
        let saw_in = Arc::clone(&saw);
        let report = explore(Config::default(), move |env| {
            let c = env.atomic(0);
            let done = env.atomic(0);
            for _ in 0..2 {
                let (c, done) = (c.clone(), done.clone());
                env.spawn(move || {
                    let v = c.load();
                    c.store(v + 1);
                    done.fetch_add(1);
                });
            }
            let saw = Arc::clone(&saw_in);
            env.spawn(move || {
                if done.load() == 2 {
                    let mut s = saw.lock().unwrap();
                    match c.load() {
                        1 => s.0 = true,
                        2 => s.1 = true,
                        other => panic!("impossible count {other}"),
                    }
                }
            });
        });
        assert!(report.is_clean(), "{report}");
        assert!(report.executions > 10, "{report}");
        let s = *saw.lock().unwrap();
        assert!(s.0, "lost update never explored");
        assert!(s.1, "clean run never explored");
    }

    #[test]
    fn ab_ba_lock_order_deadlocks_and_the_trace_names_both_threads() {
        let report = explore(Config::default(), |env| {
            let a = env.mutex(0u64);
            let b = env.mutex(0u64);
            {
                let (a, b) = (a.clone(), b.clone());
                env.spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                });
            }
            env.spawn(move || {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        });
        assert!(
            !report.deadlocks.is_empty(),
            "AB-BA must deadlock under some schedule: {report}"
        );
        let t = &report.deadlocks[0];
        assert!(t.detail.contains("thread 0") && t.detail.contains("thread 1"), "{t}");
        assert!(t.detail.contains("blocked on mutex"), "{t}");
        assert!(report.panics.is_empty(), "{report}");
    }

    #[test]
    fn self_relock_is_reported_as_a_deadlock() {
        let report = explore(Config::default(), |env| {
            let m = env.mutex(0u64);
            env.spawn(move || {
                let _g1 = m.lock();
                let _g2 = m.lock();
            });
        });
        assert_eq!(report.deadlocks.len(), 1, "{report}");
    }

    #[test]
    fn a_model_assertion_failure_is_reported_with_its_schedule() {
        let report = explore(Config::default(), |env| {
            let c = env.atomic(0);
            let c2 = c.clone();
            env.spawn(move || c.store(7));
            env.spawn(move || assert_ne!(c2.load(), 7, "saw the write"));
        });
        assert!(!report.panics.is_empty(), "{report}");
        assert!(report.panics[0].detail.contains("saw the write"), "{}", report.panics[0]);
        assert!(!report.panics[0].schedule.is_empty());
    }

    #[test]
    fn lost_wakeup_free_condvar_protocol_is_clean() {
        // Producer sets a flag under the mutex then notifies; consumer
        // waits in a loop. No interleaving may deadlock.
        let report = explore(Config::default(), |env| {
            let m = env.mutex(false);
            let cv = env.condvar();
            {
                let (m, cv) = (m.clone(), cv.clone());
                env.spawn(move || {
                    *m.lock() = true;
                    cv.notify_one();
                });
            }
            env.spawn(move || {
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            });
        });
        assert!(report.is_clean(), "{report}");
        assert!(report.executions >= 3, "{report}");
    }

    #[test]
    fn preemption_budget_zero_still_covers_blocking_switches() {
        // With no preemptions allowed, the explorer still branches on
        // free switches (startup order, after a block/finish) — the
        // model completes under every non-preemptive schedule.
        let cfg = Config { preemption_budget: 0, ..Config::default() };
        let report = explore(cfg, |env| {
            let m = env.mutex(0u32);
            let m2 = m.clone();
            env.spawn(move || *m.lock() += 1);
            env.spawn(move || *m2.lock() += 1);
        });
        assert!(report.is_clean(), "{report}");
        assert!(report.executions >= 2, "startup order is a free branch: {report}");
        assert!(!report.truncated, "{report}");
    }
}
