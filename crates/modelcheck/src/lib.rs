//! Loom-style model checker for the serve layer's protocol cores.
//!
//! The resident service keeps its three riskiest protocols as pure
//! decision cores (`sssp_serve::proto`): slot respawn/bow-out, queue
//! drain/shed, and poison recovery. This crate supplies the other half
//! of that bargain: shim synchronization primitives ([`sync`]) whose
//! every operation is a scheduling point, and a DFS explorer ([`exec`])
//! that runs a small multi-threaded model under **every** interleaving
//! of those points — bounded by a preemption budget and pruned by state
//! hashing — rather than the handful a stress test happens to sample.
//!
//! ```no_run
//! # #[cfg(feature = "modelcheck")] fn main() {
//! use modelcheck::{explore, Config};
//!
//! let report = explore(Config::default(), |env| {
//!     let counter = env.atomic(0);
//!     for _ in 0..2 {
//!         let c = counter.clone();
//!         env.spawn(move || {
//!             let v = c.load();
//!             c.store(v + 1);
//!         });
//!     }
//! });
//! // The load/store race loses an increment in some interleavings —
//! // and the explorer visits one that proves it.
//! assert!(report.is_clean());
//! # }
//! # #[cfg(not(feature = "modelcheck"))] fn main() {}
//! ```
//!
//! What the explorer detects, per interleaving:
//!
//! - **deadlock** — some thread is unfinished and none is runnable
//!   (lost wakeups, AB-BA lock orders, self-relock);
//! - **panic** — any model-thread assertion failure, reported with the
//!   schedule that produced it;
//! - plus the caller's own invariants, asserted inside the model body.
//!
//! Model soundness notes (all deliberate, all documented at the use
//! sites): `notify_one` is modeled as `notify_all` and spurious wakeups
//! are not injected — both are sound for the condvar-in-a-loop pattern
//! the serve layer uses exclusively; the memory model is sequential
//! consistency (the cores under test are lock-protected, not lock-free);
//! state-hash pruning can in principle collide two distinct states, with
//! probability ~2⁻⁶⁴ per pair.
//!
//! With `--no-default-features` the shims compile to zero-cost std
//! newtypes and the explorer is absent, so instrumented code costs
//! nothing in a production build.

#[cfg(feature = "modelcheck")]
pub mod exec;
pub mod sync;

#[cfg(feature = "modelcheck")]
pub use exec::{explore, Config, Env, Report, Trace};
