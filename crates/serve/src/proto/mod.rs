//! Pure-logic protocol cores for the serve layer's concurrency.
//!
//! Each module here is the *decision* half of one lock-and-signal
//! protocol, extracted from its I/O half so `crates/modelcheck` can
//! drive it through every interleaving a DFS explorer can reach:
//!
//! - [`slot`] — the supervisor slot state machine (generation-checked
//!   respawn vs. abandoned-thread bow-out), on abstract `u64` tick time
//!   instead of `Instant`;
//! - [`drain`] — the admission queue's admit/shed/drain/shutdown
//!   bookkeeping (the hint-0 bug class: a drain must never shed with
//!   the shutdown sentinel `0`), without the job storage or condvar;
//! - [`recover`] — the poison-recovering lock acquisition policy,
//!   generic over the lock so the model checker can race poisoners
//!   against it on a shim mutex.
//!
//! The production wrappers ([`crate::supervisor`], [`crate::queue`],
//! [`crate::lock`]) own the real clocks, threads, condvars, and cancel
//! tokens and delegate every state transition here, so what the model
//! checker certifies is the code that actually runs. Every core derives
//! `Hash`: the model checker's state-space pruning hashes the shared
//! state at each scheduling point. See DESIGN.md §16 for how to add a
//! new protocol without breaking the lints.

pub mod drain;
pub mod recover;
pub mod slot;
