//! The admission queue's decision core: admit/shed/drain/shutdown
//! bookkeeping with no job storage, no mutex, and no condvar.
//!
//! [`crate::queue::AdmissionQueue`] keeps a `QueueCore` plus a
//! `VecDeque` of the actual jobs under one lock; every policy decision
//! — admit or shed, which hint, dispatch or wait — is made here, on
//! plain counters. That split is what lets the model checker prove the
//! **hint-0 invariant** (the PR-8 bug class) rather than regression-test
//! it: a shed during a graceful [`QueueCore::begin_drain`] always
//! carries a live `retry_after_ms ≥ 1`, and the shutdown sentinel `0`
//! is issued iff [`QueueCore::shutdown`] ran — under *every*
//! interleaving of submitters, poppers, and the drainer, not just the
//! ones a chaos test happens to sample.
//!
//! The second machine-checked invariant is job conservation:
//! `admitted == dispatched + drained + waiting` at every step (with
//! `dispatched == running + completed`).

/// Assumed per-job service time before the first completion is
/// observed (keeps the first shed wave reproducible in tests).
pub const DEFAULT_SERVICE_MS: u64 = 50;

/// What [`QueueCore::on_submit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitDecision {
    /// Admitted: the caller must enqueue the job and signal a popper.
    Admit,
    /// Shed (queue full or draining) with a live backoff hint, ≥ 1 by
    /// construction so it can never collide with the shutdown sentinel.
    Shed {
        /// `max(1, avg_service_ms × (waiting + running + 1))`.
        retry_after_ms: u64,
    },
    /// The service is gone ([`QueueCore::shutdown`] ran): shed with the
    /// sentinel hint `0`, "do not retry here".
    Refuse,
}

/// What [`QueueCore::try_dispatch`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopDecision {
    /// A job is dispatchable: the caller must dequeue it.
    Dispatch,
    /// Shut down: poppers wake with `None`.
    Closed,
    /// Nothing dispatchable (empty, or dispatch held): wait.
    Wait,
}

/// The admission queue's pure state (see module docs). `waiting`
/// mirrors the wrapper's job deque length — the wrapper asserts that on
/// every transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueueCore {
    capacity: usize,
    waiting: usize,
    running: usize,
    completed: u64,
    total_service_ms: u64,
    held: bool,
    draining: bool,
    shutdown: bool,
    shed: u64,
    admitted: u64,
}

impl QueueCore {
    /// A core admitting at most `capacity` waiting jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        QueueCore {
            capacity: capacity.max(1),
            waiting: 0,
            running: 0,
            completed: 0,
            total_service_ms: 0,
            held: false,
            draining: false,
            shutdown: false,
            shed: 0,
            admitted: 0,
        }
    }

    /// `max(1, avg_service_ms × (waiting + running + 1))`: the backlog
    /// ahead of a new submission, plus the job itself, at the observed
    /// per-job service time ([`DEFAULT_SERVICE_MS`] before the first
    /// completion). Never 0, so a live hint can never collide with the
    /// shutdown sentinel.
    pub fn backoff_hint(&self) -> u64 {
        let avg = self
            .total_service_ms
            .checked_div(self.completed)
            .map_or(DEFAULT_SERVICE_MS, |a| a.max(1));
        let backlog = self.waiting as u64 + self.running as u64 + 1;
        avg.saturating_mul(backlog).max(1)
    }

    /// Decide a submission's fate and update the counters.
    pub fn on_submit(&mut self) -> SubmitDecision {
        if self.shutdown {
            return SubmitDecision::Refuse;
        }
        if self.draining || self.waiting >= self.capacity {
            self.shed += 1;
            return SubmitDecision::Shed {
                retry_after_ms: self.backoff_hint(),
            };
        }
        self.admitted += 1;
        self.waiting += 1;
        SubmitDecision::Admit
    }

    /// Decide whether a popper gets a job, gets `None`, or waits.
    pub fn try_dispatch(&mut self) -> PopDecision {
        if self.shutdown {
            return PopDecision::Closed;
        }
        if !self.held && self.waiting > 0 {
            self.waiting -= 1;
            self.running += 1;
            return PopDecision::Dispatch;
        }
        PopDecision::Wait
    }

    /// Record a dispatched job's completion and its service time (feeds
    /// the hint's running average).
    pub fn on_finish(&mut self, service_ms: u64) {
        self.running = self.running.saturating_sub(1);
        self.completed += 1;
        self.total_service_ms += service_ms;
    }

    /// Freeze/unfreeze dispatch (the debug HOLD lever).
    pub fn set_held(&mut self, held: bool) {
        self.held = held;
    }

    /// Begin a graceful drain: stop admitting (later submissions shed
    /// with the live hint) and shed every waiting job back to the
    /// caller. Returns how many the caller must drain from its storage.
    pub fn begin_drain(&mut self) -> usize {
        self.draining = true;
        let n = self.waiting;
        self.shed += n as u64;
        self.waiting = 0;
        n
    }

    /// The service is gone: poppers get [`PopDecision::Closed`], and
    /// submissions get the sentinel [`SubmitDecision::Refuse`].
    pub fn shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Whether a drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Jobs dispatched but not yet finished.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Jobs admitted and not yet dispatched or drained.
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// `(waiting, running, shed, admitted)` for STATS.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.waiting as u64,
            self.running as u64,
            self.shed,
            self.admitted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_until_capacity_then_shed_with_live_hints() {
        let mut q = QueueCore::new(2);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        // 50ms default × (2 waiting + 0 running + 1) = 150.
        assert_eq!(q.on_submit(), SubmitDecision::Shed { retry_after_ms: 150 });
        assert_eq!(q.counters(), (2, 0, 1, 2));
    }

    #[test]
    fn hint_is_never_zero_even_at_zero_observed_service_time() {
        let mut q = QueueCore::new(1);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        assert_eq!(q.try_dispatch(), PopDecision::Dispatch);
        q.on_finish(0);
        assert_eq!(q.backoff_hint(), 1);
    }

    #[test]
    fn drain_sheds_waiting_and_later_submissions_carry_live_hints() {
        let mut q = QueueCore::new(4);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        assert_eq!(q.begin_drain(), 2);
        assert!(q.is_draining());
        assert_eq!(q.waiting(), 0);
        match q.on_submit() {
            SubmitDecision::Shed { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("drain must shed with a live hint, got {other:?}"),
        }
        q.shutdown();
        assert_eq!(q.on_submit(), SubmitDecision::Refuse);
        assert_eq!(q.try_dispatch(), PopDecision::Closed);
    }

    #[test]
    fn hold_defers_dispatch_without_refusing_admission() {
        let mut q = QueueCore::new(4);
        q.set_held(true);
        assert_eq!(q.on_submit(), SubmitDecision::Admit);
        assert_eq!(q.try_dispatch(), PopDecision::Wait);
        q.set_held(false);
        assert_eq!(q.try_dispatch(), PopDecision::Dispatch);
    }

    #[test]
    fn conservation_holds_across_a_mixed_history() {
        let mut q = QueueCore::new(3);
        let mut dispatched = 0u64;
        let mut drained = 0u64;
        for step in 0..50u64 {
            match step % 5 {
                0..=2 => {
                    q.on_submit();
                }
                3 => {
                    if q.try_dispatch() == PopDecision::Dispatch {
                        dispatched += 1;
                        q.on_finish(step);
                    }
                }
                _ => {
                    if step == 44 {
                        drained += q.begin_drain() as u64;
                    }
                }
            }
            let (waiting, _, _, admitted) = q.counters();
            assert_eq!(admitted, dispatched + drained + waiting, "step {step}");
        }
    }
}
