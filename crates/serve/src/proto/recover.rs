//! The poison-recovery acquisition policy, as a pure function.
//!
//! [`crate::lock::recover`]'s contract is: a panic in an earlier holder
//! must cost that holder's job only — the next acquirer clears the
//! poison flag and proceeds over the (still consistent) state. The
//! policy itself is three lines; extracting it lets the model checker
//! race it against concurrent poisoners on a shim mutex, proving that
//! however panics and acquisitions interleave, every acquisition
//! returns a usable guard and the flag never sticks.

/// Acquire through `lock`, clearing poison when the previous holder
/// panicked. `lock` returns `Ok(guard)` on a clean acquisition and
/// `Err(guard)` on a poisoned one (for `std::sync::Mutex`, that is
/// `m.lock().map_err(PoisonError::into_inner)`); `clear_poison` resets
/// the flag so later plain `lock()` users succeed too.
pub fn acquire_recovering<G>(
    lock: impl FnOnce() -> Result<G, G>,
    clear_poison: impl FnOnce(),
) -> G {
    match lock() {
        Ok(guard) => guard,
        Err(guard) => {
            clear_poison();
            guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clean_acquisition_does_not_touch_the_flag() {
        let cleared = Cell::new(false);
        let g = acquire_recovering(|| Ok::<_, u32>(7u32), || cleared.set(true));
        assert_eq!(g, 7);
        assert!(!cleared.get());
    }

    #[test]
    fn poisoned_acquisition_clears_and_hands_out_the_guard() {
        let cleared = Cell::new(false);
        let g = acquire_recovering(|| Err::<u32, _>(7u32), || cleared.set(true));
        assert_eq!(g, 7, "the poisoned guard's state is handed out intact");
        assert!(cleared.get(), "the flag must be cleared for later acquirers");
    }

    #[test]
    fn matches_std_mutex_poisoning_end_to_end() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // lint:allow(hot-path-lock): test fixture
        use std::sync::{Mutex, PoisonError};
        // lint:allow(hot-path-lock): test fixture
        let m = Mutex::new(1u64);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        let mut g = acquire_recovering(
            || m.lock().map_err(PoisonError::into_inner),
            || m.clear_poison(),
        );
        *g += 1;
        drop(g);
        assert!(!m.is_poisoned());
        assert_eq!(*m.lock().unwrap(), 2);
    }
}
