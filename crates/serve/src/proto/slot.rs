//! The supervisor slot state machine, on abstract `u64` tick time.
//!
//! One [`SlotCore`] is the decision half of one worker slot in
//! [`crate::supervisor::Supervisor`]: the four-state health machine
//! (healthy → poisoned → recycled → permanently-degraded), the
//! generation check that makes stale threads bow out, and the
//! two-strike heartbeat watchdog (cancel a stalled job, then abandon
//! the worker if it never reaches another budget check). The wrapper
//! owns `Instant`s, `CancelToken`s, and `ProgressGauge`s and converts
//! them to ticks / observed progress values at the call boundary.
//!
//! The invariants the model checker drives through every interleaving:
//!
//! 1. a report from a stale generation never mutates the slot (the
//!    abandoned thread's bow-out cannot poison its replacement);
//! 2. `generation` is strictly monotonic, bumped exactly once per
//!    respawn, and a respawn happens only from `Poisoned`;
//! 3. `PermanentlyDegraded` is sticky — no transition leaves it;
//! 4. at most one respawn is claimed per poisoning.

/// Where a slot stands in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotHealth {
    /// A live worker serves the requested implementation.
    Healthy,
    /// The worker retired after a panic; the slot awaits its cooldown.
    Poisoned,
    /// Recycled too often: the worker keeps serving, sticky
    /// sequential-fused, and is never recycled again.
    PermanentlyDegraded,
}

/// What a worker reporting a panic must do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoisonVerdict {
    /// Exit the worker loop; the supervisor will respawn the slot after
    /// its cooldown.
    Retire,
    /// Keep serving (sticky sequential-fused): the slot is permanently
    /// degraded, or the report came from a stale generation.
    KeepServing,
}

/// What one watchdog scan of a slot decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanVerdict {
    /// Progress advanced, stall within grace, or no active job.
    Ok,
    /// Stalled past grace (and past any deadline): the caller must
    /// cancel the job through its token.
    Cancel,
    /// Still stalled a full grace after the cancel — the worker never
    /// reached another budget check. The slot has been re-poisoned; the
    /// caller must treat the thread as abandoned.
    Abandon,
}

/// A running job, as the watchdog's decision logic sees it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobCore {
    started_tick: u64,
    deadline_ticks: Option<u64>,
    last_progress: u64,
    last_advance_tick: u64,
    /// Whether the watchdog already cancelled this job (the worker
    /// learns it from [`SlotCore::job_finished`]).
    pub cancelled_by_watchdog: bool,
}

/// One slot's pure supervision state (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotCore {
    /// Current health (the state machine node).
    pub health: SlotHealth,
    /// Why the slot last left `Healthy` (sticky through recycling).
    pub reason: Option<String>,
    /// When the slot entered `Poisoned` (cooldown anchor).
    since_tick: u64,
    /// Respawns already served.
    pub recycles: u32,
    /// Bumped on every respawn; reports from older generations are
    /// ignored.
    pub generation: u64,
    /// The registered running job, if any.
    pub active: Option<JobCore>,
}

impl SlotCore {
    /// A healthy, generation-0 slot.
    pub fn new(now: u64) -> Self {
        SlotCore {
            health: SlotHealth::Healthy,
            reason: None,
            since_tick: now,
            recycles: 0,
            generation: 0,
            active: None,
        }
    }

    /// Exponential backoff in recycles already served, saturating well
    /// below overflow; `2^16 ×` base is already "effectively never".
    pub fn backoff(&self, base: u64) -> u64 {
        base.saturating_mul(1u64 << self.recycles.min(16))
    }

    /// A worker observed a typed panic marker. Returns what the worker
    /// must do; a stale `generation` leaves the slot untouched.
    pub fn report_poisoned(
        &mut self,
        generation: u64,
        now: u64,
        max_recycles: u32,
        reason: &str,
    ) -> PoisonVerdict {
        if self.generation != generation {
            // A stale thread outlived its replacement decision; it must
            // just go away without touching the live slot.
            return PoisonVerdict::Retire;
        }
        self.reason = Some(reason.to_string());
        self.active = None;
        if self.health == SlotHealth::PermanentlyDegraded {
            return PoisonVerdict::KeepServing;
        }
        if self.recycles >= max_recycles {
            self.health = SlotHealth::PermanentlyDegraded;
            return PoisonVerdict::KeepServing;
        }
        self.health = SlotHealth::Poisoned;
        self.since_tick = now;
        PoisonVerdict::Retire
    }

    /// If this slot is poisoned and its backoff has elapsed, transition
    /// back to `Healthy` under a fresh generation and return it (the
    /// caller must spawn a worker for `(slot, generation)`).
    pub fn claim_respawn(&mut self, now: u64, cooldown: u64) -> Option<u64> {
        if self.health == SlotHealth::Poisoned
            && now.saturating_sub(self.since_tick) >= self.backoff(cooldown)
        {
            self.health = SlotHealth::Healthy;
            self.recycles += 1;
            self.generation += 1;
            self.active = None;
            return Some(self.generation);
        }
        None
    }

    /// Register a job that just started on this slot; a stale
    /// generation registers nothing (returns `false`).
    pub fn job_started(&mut self, generation: u64, now: u64, deadline: Option<u64>) -> bool {
        if self.generation != generation {
            return false;
        }
        self.active = Some(JobCore {
            started_tick: now,
            deadline_ticks: deadline,
            last_progress: 0,
            last_advance_tick: now,
            cancelled_by_watchdog: false,
        });
        true
    }

    /// Deregister this slot's job; returns whether the watchdog
    /// cancelled it (the worker should then treat itself as suspect).
    /// A stale generation deregisters nothing.
    pub fn job_finished(&mut self, generation: u64) -> bool {
        if self.generation != generation {
            return false;
        }
        self.active
            .take()
            .map(|j| j.cancelled_by_watchdog)
            .unwrap_or(false)
    }

    /// One watchdog pass, fed the job's current progress reading:
    ///
    /// * progress advanced → note it, [`ScanVerdict::Ok`];
    /// * stalled past `grace` (and past the job's deadline, when it
    ///   carries one) → [`ScanVerdict::Cancel`]; the caller cancels
    ///   through the job's token;
    /// * *still* stalled a full grace after the cancel → re-poison the
    ///   slot and report [`ScanVerdict::Abandon`].
    pub fn scan(&mut self, now: u64, progress: u64, grace: u64) -> ScanVerdict {
        let Some(job) = self.active.as_mut() else {
            return ScanVerdict::Ok;
        };
        if progress > job.last_progress {
            job.last_progress = progress;
            job.last_advance_tick = now;
            return ScanVerdict::Ok;
        }
        let stalled = now.saturating_sub(job.last_advance_tick) >= grace;
        if !stalled {
            return ScanVerdict::Ok;
        }
        if !job.cancelled_by_watchdog {
            let past_deadline = job
                .deadline_ticks
                .map(|d| now.saturating_sub(job.started_tick) >= d)
                .unwrap_or(true);
            if past_deadline {
                job.cancelled_by_watchdog = true;
                job.last_advance_tick = now;
                return ScanVerdict::Cancel;
            }
        } else if self.health == SlotHealth::Healthy {
            // Cancelled a full grace ago and still no epoch boundary:
            // the thread is wedged below the budget checks. Abandon it.
            self.reason = Some("watchdog: worker wedged past cancellation".to_string());
            self.health = SlotHealth::Poisoned;
            self.since_tick = now;
            self.active = None;
            return ScanVerdict::Abandon;
        }
        ScanVerdict::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_then_respawn_bumps_the_generation_once() {
        let mut s = SlotCore::new(0);
        assert_eq!(s.report_poisoned(0, 10, 5, "boom"), PoisonVerdict::Retire);
        assert_eq!(s.health, SlotHealth::Poisoned);
        assert_eq!(s.claim_respawn(10, 20), None, "cooldown not elapsed");
        assert_eq!(s.claim_respawn(30, 20), Some(1));
        assert_eq!(s.health, SlotHealth::Healthy);
        assert_eq!(s.claim_respawn(100, 20), None, "healthy slots never respawn");
    }

    #[test]
    fn stale_generation_reports_leave_the_slot_untouched() {
        let mut s = SlotCore::new(0);
        assert_eq!(s.report_poisoned(0, 1, 5, "p"), PoisonVerdict::Retire);
        assert_eq!(s.claim_respawn(100, 1), Some(1));
        let before = s.clone();
        assert_eq!(s.report_poisoned(0, 200, 5, "late echo"), PoisonVerdict::Retire);
        assert_eq!(s, before, "stale report must not mutate anything");
        assert!(!s.job_started(0, 200, None));
        assert!(!s.job_finished(0));
        assert_eq!(s, before);
    }

    #[test]
    fn backoff_doubles_per_recycle_and_degradation_is_sticky() {
        let mut s = SlotCore::new(0);
        assert_eq!(s.backoff(10), 10);
        let mut now = 0;
        for gen in 0..2u64 {
            assert_eq!(s.report_poisoned(gen, now, 2, "p"), PoisonVerdict::Retire);
            now += s.backoff(10);
            assert_eq!(s.claim_respawn(now, 10), Some(gen + 1));
        }
        assert_eq!(s.backoff(10), 40, "two recycles → 4× base");
        // Third poisoning: recycles (2) ≥ max_recycles (2) → permanent.
        assert_eq!(s.report_poisoned(2, now, 2, "p3"), PoisonVerdict::KeepServing);
        assert_eq!(s.health, SlotHealth::PermanentlyDegraded);
        assert_eq!(s.claim_respawn(now + 1_000_000, 10), None);
        assert_eq!(
            s.report_poisoned(2, now, 2, "p4"),
            PoisonVerdict::KeepServing,
            "degradation is sticky"
        );
        assert_eq!(s.health, SlotHealth::PermanentlyDegraded);
    }

    #[test]
    fn watchdog_two_strike_path() {
        let mut s = SlotCore::new(0);
        assert!(s.job_started(0, 0, Some(1)));
        // Advancing progress is never cancelled.
        assert_eq!(s.scan(40, 1, 30), ScanVerdict::Ok);
        assert_eq!(s.scan(60, 1, 30), ScanVerdict::Ok, "stall shorter than grace");
        assert_eq!(s.scan(80, 1, 30), ScanVerdict::Cancel, "stalled past grace");
        assert_eq!(s.scan(90, 1, 30), ScanVerdict::Ok, "second grace window running");
        assert_eq!(s.scan(120, 1, 30), ScanVerdict::Abandon, "wedged past cancel");
        assert_eq!(s.health, SlotHealth::Poisoned);
        assert!(s.active.is_none());
    }

    #[test]
    fn cooperative_cancel_is_reported_through_job_finished() {
        let mut s = SlotCore::new(0);
        assert!(s.job_started(0, 0, None));
        assert_eq!(s.scan(100, 0, 30), ScanVerdict::Cancel);
        assert!(s.job_finished(0), "worker learns the watchdog verdict");
        assert!(!s.job_finished(0), "second finish sees no job");
    }
}
