//! The resident server: accept loop, graph registry, engine workers,
//! and the robustness spine tying them together.
//!
//! ## Thread and failure topology
//!
//! - One **accept thread** hands each connection to its own detached
//!   **handler thread**. Handlers own their sockets: engine workers
//!   reply through an in-process channel and never touch a socket, so a
//!   stalled or dead client can only ever cost its own handler. Socket
//!   read/write timeouts bound even that — a reader that stops draining
//!   a full distance dump trips the write timeout (the *writer budget*)
//!   and the connection is dropped, counted in `writer_timeouts`.
//! - `workers` **engine worker threads** drain the bounded
//!   [`AdmissionQueue`]. Overload is shed at submission time with a
//!   deterministic backoff hint (see [`crate::queue`]); admitted jobs
//!   never wait behind an unbounded backlog.
//! - Each job runs under the [`BatchRunner`] degradation ladder (panic →
//!   one sequential-fused retry). A worker that observes a panic
//!   degradation marks itself **poisoned** and retires; the
//!   [`Supervisor`] respawns the slot with a fresh engine worker after
//!   an exponential-backoff cooldown, so a latent parallel bug costs a
//!   cooldown instead of degrading the slot for the process lifetime.
//!   A slot that poisons more than `max_recycles` times is pinned
//!   **permanently degraded** (sticky sequential-fused) — the escape
//!   hatch for deterministic panics. Running jobs publish epoch
//!   progress through a [`ProgressGauge`]; the supervisor's heartbeat
//!   watchdog cancels a job that stops advancing and retires a worker
//!   that wedges below its budget checks.
//! - **Graceful drain** (SIGTERM in the binary, the debug `DRAIN` op
//!   here): admission stops with live retry hints, waiting jobs are
//!   shed, in-flight jobs are cancelled into certified partials whose
//!   checkpoints persist, and [`ServerHandle::drain`] bounds the wait.
//!
//! ## Crash-safe restart
//!
//! With a checkpoint directory configured, each graph gets the subdir
//! `<dir>/<fingerprint-hex>/` holding its `ckpt-<source>.bin` files and
//! the `GBSSMAN1` manifest maintained in lockstep by the batch layer. A
//! killed server restarted on the same directory resumes interrupted
//! jobs from their manifests bit-identically — certified by matching
//! [`crate::protocol::dist_digest`] values. Startup (and every resume)
//! runs checkpoint **quarantine**: a torn manifest or corrupt
//! `ckpt-*.bin` is moved into the graph's `quarantine/` subdirectory
//! and the manifest is rebuilt from the surviving valid files, so
//! corruption costs one file, never the service.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc;
// lint:allow(hot-path-lock): service control state is request-rate, not per-edge
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphdata::CsrGraph;
use sssp_core::manifest::CheckpointManifest;
use sssp_core::{
    BatchConfig, BatchOutcome, BatchRunner, CancelToken, GuardConfig, Implementation,
    ProgressGauge, SsspError, SteppingStrategy,
};
use taskpool::ThreadPool;

use crate::lock;
use crate::protocol::{
    self, code, dist_digest, parse_gen_spec, HealthReport, Partial, Request, Response,
    ServerStats, SsspRequest, Summary, FRAME_SOH, TEXT_TERMINATOR,
};
use crate::queue::AdmissionQueue;
use crate::supervisor::{PoisonVerdict, Supervisor, SupervisorConfig};

/// Tunables of one [`start`]ed server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine worker threads draining the admission queue.
    pub workers: usize,
    /// Admission bound: waiting jobs past this are shed, never queued.
    pub queue_capacity: usize,
    /// Threads in the shared [`ThreadPool`] for parallel implementations.
    pub pool_threads: usize,
    /// Graph registry bound; loads past it are refused.
    pub max_graphs: usize,
    /// Concurrent connection bound; accepts past it are refused.
    pub max_connections: usize,
    /// Per-connection socket read timeout (idle clients are dropped).
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout — the slow-client writer
    /// budget: a reader that stops draining loses its connection, not
    /// the server a worker.
    pub write_timeout: Option<Duration>,
    /// Byte budget for the shared split cache (`None` = unbounded).
    pub cache_bytes: Option<usize>,
    /// Durable checkpoint root; per-graph subdirectories are created
    /// beneath it on demand.
    pub checkpoint_dir: Option<PathBuf>,
    /// Whether HOLD/RELEASE are honoured (chaos-test levers).
    pub debug_commands: bool,
    /// Guard tunables inherited by every job.
    pub guard: GuardConfig,
    /// Δ applied when a request does not name one.
    pub default_delta: f64,
    /// Implementation applied when a request does not name one.
    pub default_impl: Implementation,
    /// Worker recycling and heartbeat-watchdog tunables.
    pub supervisor: SupervisorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            pool_threads: 2,
            max_graphs: 8,
            max_connections: 64,
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(10)),
            cache_bytes: None,
            checkpoint_dir: None,
            debug_commands: false,
            guard: GuardConfig::default(),
            default_delta: 1.0,
            default_impl: Implementation::Fused,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Monotonic counters and gauges behind one lock; the shutdown flag
/// rides along so connection handlers and the accept loop share a
/// single coherent view without extra atomics.
#[derive(Default)]
struct Gauges {
    shutdown: bool,
    connections_open: u64,
    connections_total: u64,
    jobs_completed: u64,
    jobs_partial: u64,
    jobs_failed: u64,
    jobs_resumed: u64,
    degraded_workers: u64,
    writer_timeouts: u64,
    files_quarantined: u64,
}

/// One admitted job: the request plus the channel its handler waits on.
struct Job {
    request: SsspRequest,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    cfg: ServerConfig,
    // Registry reads/writes happen per request, never per edge.
    // lint:allow(hot-path-lock): graph registry is request-rate control state
    graphs: Mutex<HashMap<u64, Arc<CsrGraph>>>,
    cache: Arc<sssp_core::SplitCache>,
    pool: Option<ThreadPool>,
    pool_degraded: Option<String>,
    queue: AdmissionQueue<Job>,
    // lint:allow(hot-path-lock): counters are touched per request/connection
    gauges: Mutex<Gauges>,
    supervisor: Supervisor,
    /// Every worker thread ever spawned into a slot (initial plus
    /// recycled generations); drained and joined at shutdown.
    // lint:allow(hot-path-lock): touched at spawn/shutdown only
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        lock::recover("gauges", &self.gauges).shutdown
    }

    fn stats(&self) -> ServerStats {
        let (waiting, running, shed, admitted) = self.queue.counters();
        let cache = self.cache.stats();
        let graphs = lock::recover("graphs", &self.graphs).len() as u64;
        let health = self.supervisor.health();
        let g = lock::recover("gauges", &self.gauges);
        ServerStats {
            pairs: vec![
                ("graphs_loaded".into(), graphs),
                ("jobs_completed".into(), g.jobs_completed),
                ("jobs_partial".into(), g.jobs_partial),
                ("jobs_failed".into(), g.jobs_failed),
                ("jobs_resumed".into(), g.jobs_resumed),
                ("jobs_shed".into(), shed),
                ("jobs_admitted".into(), admitted),
                ("queue_depth".into(), waiting),
                ("queue_running".into(), running),
                ("degraded_workers".into(), g.degraded_workers),
                ("writer_timeouts".into(), g.writer_timeouts),
                ("connections_open".into(), g.connections_open),
                ("connections_total".into(), g.connections_total),
                ("cache_builds".into(), cache.builds as u64),
                ("cache_hits".into(), cache.hits as u64),
                ("cache_evictions".into(), cache.evictions as u64),
                ("cache_resident_bytes".into(), cache.resident_bytes as u64),
                ("workers_healthy".into(), health.healthy),
                ("workers_poisoned".into(), health.poisoned),
                ("workers_permanently_degraded".into(), health.permanently_degraded),
                ("worker_recycles".into(), health.recycles_total),
                ("watchdog_cancelled".into(), health.watchdog_cancelled),
                ("files_quarantined".into(), g.files_quarantined),
            ],
        }
    }

    fn health_report(&self) -> HealthReport {
        let counts = self.supervisor.health();
        let draining = self.queue.is_draining();
        let status = if draining {
            "draining"
        } else if counts.poisoned + counts.permanently_degraded > 0 {
            "degraded"
        } else {
            "ok"
        };
        HealthReport {
            status: status.into(),
            workers: counts.workers,
            healthy: counts.healthy,
            poisoned: counts.poisoned,
            permanently_degraded: counts.permanently_degraded,
            recycles_total: counts.recycles_total,
            watchdog_cancelled: counts.watchdog_cancelled,
            quarantined_files: lock::recover("gauges", &self.gauges).files_quarantined,
            draining,
        }
    }

    /// Enter the graceful drain: admission sheds with live hints from
    /// here on, every waiting job is answered `OVERLOADED` right now,
    /// and in-flight jobs are cancelled so they stop at their next epoch
    /// boundary as certified (and, with a checkpoint dir, persisted)
    /// partials. Idempotent.
    fn begin_drain(&self) {
        let hint = self.queue.retry_hint();
        for job in self.queue.drain() {
            let _ = job.reply.send(Response::Overloaded { retry_after_ms: hint.max(1) });
        }
        self.supervisor.cancel_active();
    }
}

/// Map a stringified solver failure back to its wire code by the stable
/// Display prefix. Jobs crossing the batch layer arrive as strings; the
/// *typed* path ([`protocol::wire_code`]) covers errors the server still
/// holds as values.
fn classify_failure(message: &str) -> u8 {
    // The three weight errors share the "edge …" prefix and split on
    // their distinguishing word.
    if message.starts_with("edge") {
        return if message.contains("non-finite") {
            10
        } else if message.contains("negative") {
            11
        } else {
            12
        };
    }
    const PREFIXES: [(&str, u8); 8] = [
        ("source vertex", 13),
        ("delta must be positive", 14),
        ("iteration watchdog", 15),
        ("run cancelled", 16),
        ("deadline exceeded", 17),
        ("cannot resume from checkpoint", 18),
        ("checkpoint I/O failed", 19),
        ("parallel worker panicked", 20),
    ];
    for (prefix, c) in PREFIXES {
        if message.starts_with(prefix) {
            return c;
        }
    }
    code::JOB_FAILED
}

/// Run one admitted job on a worker. `poisoned` is the worker's sticky
/// degradation state; `slot`/`generation` identify the worker to the
/// supervisor for heartbeat registration.
fn run_job(
    shared: &Shared,
    req: &SsspRequest,
    poisoned: &mut Option<String>,
    slot: usize,
    generation: u64,
) -> Response {
    let Some(g) = lock::recover("graphs", &shared.graphs).get(&req.fingerprint).cloned() else {
        return Response::Error {
            code: code::UNKNOWN_GRAPH,
            message: format!("no loaded graph has fingerprint {:016x}", req.fingerprint),
        };
    };
    if req.source >= g.num_vertices() {
        let err = SsspError::SourceOutOfBounds {
            source: req.source,
            num_vertices: g.num_vertices(),
        };
        return Response::Error { code: protocol::wire_code(&err), message: err.to_string() };
    }
    let delta = req.delta.unwrap_or(shared.cfg.default_delta);
    let requested = req.implementation.unwrap_or(shared.cfg.default_impl);
    let implementation = if poisoned.is_some() { Implementation::Fused } else { requested };
    // A poisoned worker also drops any generalized strategy: its pinned
    // sequential-fused path is the classic family.
    let strategy = if poisoned.is_some() {
        SteppingStrategy::Classic
    } else {
        req.strategy.unwrap_or(SteppingStrategy::Classic)
    };
    if let Err(err) = strategy.validate() {
        return Response::Error { code: protocol::wire_code(&err), message: err.to_string() };
    }

    let mut guard = shared.cfg.guard.clone();
    if let Some(epochs) = req.epochs {
        guard.max_ticks = epochs.max(1);
    }
    // Per-graph checkpoint subdir: fingerprints keep `ckpt-<source>.bin`
    // names from colliding across graphs, and each subdir carries its
    // own manifest.
    let checkpoint_dir = match shared.cfg.checkpoint_dir.as_ref() {
        Some(root) => {
            let dir = root.join(format!("{:016x}", req.fingerprint));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                return Response::Error {
                    code: code::JOB_FAILED,
                    message: format!("cannot create checkpoint dir {}: {e}", dir.display()),
                };
            }
            Some(dir)
        }
        None => None,
    };
    // A manifest entry for this (graph, source) means the run below is a
    // resume, not a cold start.
    let resuming = checkpoint_dir
        .as_deref()
        .and_then(|d| CheckpointManifest::load_or_default(d).ok())
        .is_some_and(|m| m.find_source(req.fingerprint, req.source).is_some());

    // Register with the heartbeat watchdog: the run publishes epoch
    // progress through the gauge, and the token is the supervisor's
    // cancel lever (stall verdicts, graceful drain).
    let token = CancelToken::new();
    let gauge = ProgressGauge::new();
    shared.supervisor.job_started(
        slot,
        generation,
        token.clone(),
        gauge.clone(),
        req.deadline_ms.map(Duration::from_millis),
    );

    let runner = BatchRunner::new(BatchConfig {
        implementation,
        delta,
        strategy,
        workers: 1,
        queue_capacity: 1,
        deadline: req.deadline_ms.map(Duration::from_millis),
        cancel: Some(token),
        guard,
        pool_threads: shared.cfg.pool_threads,
        checkpoint_dir,
        progress: Some(gauge),
    });
    let report = runner.run_shared(
        &g,
        &[req.source],
        &shared.cache,
        shared.pool.as_ref(),
        shared.pool_degraded.clone(),
    );
    if !report.quarantined.is_empty() {
        lock::recover("gauges", &shared.gauges).files_quarantined += report.quarantined.len() as u64;
    }
    let Some((_, outcome)) = report.jobs.into_iter().next() else {
        return Response::Error {
            code: code::JOB_FAILED,
            message: "batch returned no outcome".into(),
        };
    };
    outcome_response(shared, req, resuming, poisoned, outcome)
}

/// Map one settled [`BatchOutcome`] to its wire response, applying the
/// worker-poisoning policy and bumping the job gauges. Split from
/// [`run_job`] so the poisoning and overload edges are unit-testable
/// without driving a live engine into them.
fn outcome_response(
    shared: &Shared,
    req: &SsspRequest,
    resuming: bool,
    poisoned: &mut Option<String>,
    outcome: BatchOutcome,
) -> Response {
    match outcome {
        BatchOutcome::Complete { result, delta, degraded, degraded_by_panic } => {
            // A panic-degraded completion poisons this worker: all later
            // jobs run sequential-fused with the notice attached. The
            // batch layer's *typed* marker decides — a degradation
            // notice that merely mentions "panic" must not poison.
            if degraded_by_panic && poisoned.is_none() {
                if let Some(msg) = &degraded {
                    *poisoned = Some(msg.clone());
                    lock::recover("gauges", &shared.gauges).degraded_workers += 1;
                }
            }
            let mut g_ = lock::recover("gauges", &shared.gauges);
            g_.jobs_completed += 1;
            if resuming {
                g_.jobs_resumed += 1;
            }
            drop(g_);
            let sticky = poisoned.as_ref().map(|why| {
                format!("worker degraded to sequential-fused after panic: {why}")
            });
            Response::Summary(Summary {
                fingerprint: req.fingerprint,
                source: req.source,
                delta,
                reached: result.dist.iter().filter(|d| d.is_finite()).count() as u64,
                stats: result.stats,
                dist_fnv: dist_digest(&result.dist),
                degraded: degraded.or(sticky),
                full: req.full.then_some(result.dist),
            })
        }
        BatchOutcome::Partial { checkpoint, reason, saved_to } => {
            lock::recover("gauges", &shared.gauges).jobs_partial += 1;
            Response::Partial(Partial {
                source: req.source,
                delta: checkpoint.delta,
                code: classify_failure(&reason),
                settled: checkpoint.settled_count() as u64,
                settled_below: checkpoint.settled_below(),
                saved: saved_to
                    .and_then(|p| p.file_name().map(|n| n.to_string_lossy().into_owned())),
                reason,
            })
        }
        BatchOutcome::Failed { error, panicked } => {
            lock::recover("gauges", &shared.gauges).jobs_failed += 1;
            // Same typed-marker rule as above: an error whose *text*
            // contains "panic" (a checkpoint path, a user string) must
            // not poison a healthy worker.
            if panicked && poisoned.is_none() {
                *poisoned = Some(error.clone());
                lock::recover("gauges", &shared.gauges).degraded_workers += 1;
            }
            Response::Error { code: classify_failure(&error), message: error }
        }
        // The queue's live backoff hint is always ≥ 1 ms, so this reply
        // can never collide with the shutdown sentinel `retry_after_ms
        // == 0` the dispatch path reserves (see `dispatch`).
        BatchOutcome::Rejected { .. } => {
            Response::Overloaded { retry_after_ms: shared.queue.retry_hint() }
        }
    }
}

fn handle_load(shared: &Shared, spec: &str) -> Response {
    let el = match parse_gen_spec(spec) {
        Ok(el) => el,
        Err(e) => return Response::Error { code: code::LOAD_FAILED, message: e },
    };
    let g = match CsrGraph::from_edge_list(&el) {
        Ok(g) => g,
        Err(e) => {
            return Response::Error { code: code::LOAD_FAILED, message: e.to_string() }
        }
    };
    let fingerprint = g.fingerprint();
    let (vertices, edges) = (g.num_vertices() as u64, g.num_edges() as u64);
    let mut graphs = lock::recover("graphs", &shared.graphs);
    if !graphs.contains_key(&fingerprint) {
        if graphs.len() >= shared.cfg.max_graphs {
            return Response::Error {
                code: code::GRAPH_TABLE_FULL,
                message: format!(
                    "graph registry is at its bound of {}; load refused",
                    shared.cfg.max_graphs
                ),
            };
        }
        graphs.insert(fingerprint, Arc::new(g));
    }
    Response::Loaded { fingerprint, vertices, edges }
}

/// Dispatch one request from a connection handler. `Sssp` goes through
/// admission; everything else is answered inline (control traffic must
/// stay responsive even when the engine queue is full). Returns the
/// response and whether the connection should close.
fn dispatch(shared: &Shared, request: Request) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Quit => (Response::Done, true),
        Request::Stats => (Response::Stats(shared.stats()), false),
        Request::Health => (Response::Health(shared.health_report()), false),
        Request::Hold | Request::Release | Request::Drain => {
            if !shared.cfg.debug_commands {
                return (
                    Response::Error {
                        code: code::DEBUG_DISABLED,
                        message: "HOLD/RELEASE/DRAIN require --debug-commands".into(),
                    },
                    false,
                );
            }
            match request {
                Request::Hold => shared.queue.hold(),
                Request::Release => shared.queue.release(),
                _ => shared.begin_drain(),
            }
            (Response::Done, false)
        }
        Request::LoadGen { spec } => (handle_load(shared, &spec), false),
        Request::Sssp(req) => {
            let (tx, rx) = mpsc::channel();
            match shared.queue.submit(Job { request: req, reply: tx }) {
                Err(retry_after_ms) if shared.is_shutdown() || retry_after_ms == 0 => (
                    Response::Error {
                        code: code::SHUTTING_DOWN,
                        message: "server is shutting down".into(),
                    },
                    true,
                ),
                Err(retry_after_ms) => (Response::Overloaded { retry_after_ms }, false),
                Ok(()) => match rx.recv() {
                    Ok(resp) => (resp, false),
                    // The queue was torn down with this job still in it.
                    Err(_) => (
                        Response::Error {
                            code: code::SHUTTING_DOWN,
                            message: "server shut down before the job ran".into(),
                        },
                        true,
                    ),
                },
            }
        }
    }
}

/// One engine worker generation serving `slot`. The sticky `poisoned`
/// marker lives and dies with the thread: on a typed panic the worker
/// reports to the supervisor and usually retires (the supervisor
/// respawns the slot with a clean engine after its cooldown); only a
/// permanently-degraded verdict keeps the marker — and the
/// sequential-fused pinning — for the rest of the process.
fn worker_loop(shared: &Shared, slot: usize, generation: u64) {
    let mut poisoned: Option<String> = None;
    while let Some(job) = shared.queue.pop() {
        let was_poisoned = poisoned.is_some();
        let started = Instant::now();
        let response = run_job(shared, &job.request, &mut poisoned, slot, generation);
        shared.queue.finish(started.elapsed());
        // The watchdog's verdict on the job that just came back: a
        // cancelled heartbeat means this worker stalled mid-run and is
        // suspect even though it eventually returned.
        if shared.supervisor.job_finished(slot, generation) && poisoned.is_none() {
            poisoned = Some("watchdog: job heartbeat stalled".into());
            lock::recover("gauges", &shared.gauges).degraded_workers += 1;
        }
        // A dead handler (client gone) just drops the reply.
        let _ = job.reply.send(response);
        if poisoned.is_some() && !was_poisoned {
            let reason = poisoned.clone().unwrap_or_default();
            if shared.supervisor.report_poisoned(slot, generation, &reason)
                == PoisonVerdict::Retire
            {
                // The supervisor respawns this slot after its cooldown;
                // a fresh thread means a clean, unpinned engine.
                return;
            }
            // KeepServing: the slot is permanently degraded — keep the
            // sticky marker and serve sequential-fused forever.
        }
        if !shared.supervisor.is_current(slot, generation) {
            // Abandoned by the watchdog as wedged and already replaced:
            // the reply above was still valid, but this thread must bow
            // out rather than compete with its successor.
            return;
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn write_text(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut out = String::new();
    for line in protocol::render_response(resp) {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(TEXT_TERMINATOR);
    out.push('\n');
    stream.write_all(out.as_bytes())
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.cfg.read_timeout);
    let _ = stream.set_write_timeout(shared.cfg.write_timeout);

    // Mode sniff: a binary conversation opens with SOH (0x01), which no
    // text command starts with.
    let mut first = [0u8; 1];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    let result = if first[0] == FRAME_SOH {
        handle_binary(shared, &mut stream)
    } else {
        handle_text(shared, first[0], &mut stream)
    };
    if let Err(e) = result {
        if is_timeout(&e) {
            lock::recover("gauges", &shared.gauges).writer_timeouts += 1;
        }
    }
}

/// Binary conversation. The first frame's SOH byte was consumed by the
/// mode sniff; later frames carry their own.
fn handle_binary(shared: &Shared, stream: &mut TcpStream) -> std::io::Result<()> {
    let mut first_frame = true;
    loop {
        let (op, payload) = match protocol::read_frame(stream, !first_frame) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        first_frame = false;
        let (resp, close) = match protocol::decode_request(op, &payload) {
            Ok(req) => dispatch(shared, req),
            Err(message) => (Response::Error { code: code::BAD_REQUEST, message }, false),
        };
        let (rop, rpayload) = protocol::encode_response(&resp);
        protocol::write_frame(stream, rop, &rpayload)?;
        if close {
            return Ok(());
        }
    }
}

/// Text conversation; `first` is the already-sniffed first byte.
fn handle_text(shared: &Shared, first: u8, stream: &mut TcpStream) -> std::io::Result<()> {
    let reader = stream.try_clone()?;
    let lines = BufReader::new(std::io::Cursor::new(vec![first]).chain(reader)).lines();
    for line in lines {
        let line = match line {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, close) = match protocol::parse_request(line.trim()) {
            Ok(req) => dispatch(shared, req),
            Err(message) => (Response::Error { code: code::BAD_REQUEST, message }, false),
        };
        write_text(stream, &resp)?;
        if close {
            return Ok(());
        }
    }
    Ok(())
}

/// A started server: its bound address plus the handles needed to stop
/// it cleanly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot, equivalent to a STATS request.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Health snapshot, equivalent to a HEALTH request.
    pub fn health(&self) -> HealthReport {
        self.shared.health_report()
    }

    /// Enter the graceful drain (see [`ServerHandle::drain`] for the
    /// bounded, blocking variant). Idempotent.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain has been requested — by [`ServerHandle::begin_drain`]
    /// or by a wire `DRAIN` op. The binary's signal loop polls this.
    pub fn drain_requested(&self) -> bool {
        self.shared.queue.is_draining()
    }

    /// Graceful drain with a deadline: stop admitting (waiting jobs are
    /// shed with live retry hints), cancel in-flight jobs into certified
    /// partials, wait up to `deadline` for them to reach their next
    /// epoch boundary, then shut down. Returns whether every in-flight
    /// job settled within the deadline.
    pub fn drain(self, deadline: Duration) -> bool {
        self.shared.begin_drain();
        let start = Instant::now();
        while self.shared.queue.running() > 0 && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let clean = self.shared.queue.running() == 0;
        self.shutdown();
        clean
    }

    /// Stop accepting, drain workers, and join the service threads.
    /// Queued-but-unstarted jobs are answered with a shutting-down
    /// error; running jobs finish.
    pub fn shutdown(mut self) {
        lock::recover("gauges", &self.shared.gauges).shutdown = true;
        self.shared.queue.shutdown();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The supervisor joins before the workers so no new generation
        // can be spawned after the handle list is drained.
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = lock::recover("worker_handles", &self.shared.worker_handles).drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and start the service threads. Returns once the listener
/// is live; the returned handle reports the bound address.
pub fn start(cfg: ServerConfig, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;

    // One pool for the server's lifetime. Creation failure degrades
    // every parallel job to sequential-fused — visibly, via the
    // per-reply degradation notice — instead of failing startup.
    let (pool, pool_degraded) = match ThreadPool::with_threads(cfg.pool_threads.max(1)) {
        Ok(p) => (Some(p), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let cache = match cfg.cache_bytes {
        Some(bytes) => Arc::new(sssp_core::SplitCache::with_byte_budget(bytes)),
        None => Arc::new(sssp_core::SplitCache::new()),
    };
    // Startup quarantine pass: every per-graph checkpoint subdir is
    // checked, torn manifests and corrupt ckpt files are moved to
    // `quarantine/`, and the manifests are rebuilt from the survivors —
    // so a crash that tore a file delays startup by one scan instead of
    // making the directory unservable.
    let quarantined_at_startup = match cfg.checkpoint_dir.as_deref() {
        Some(root) => quarantine_scan(root),
        None => 0,
    };
    let workers = cfg.workers.max(1);
    let supervisor_cfg = cfg.supervisor.clone();
    let shared = Arc::new(Shared {
        queue: AdmissionQueue::new(cfg.queue_capacity),
        // lint:allow(hot-path-lock): registry is touched once per request
        graphs: Mutex::new(HashMap::new()),
        cache,
        pool,
        pool_degraded,
        // lint:allow(hot-path-lock): counters are touched per request/connection
        gauges: Mutex::new(Gauges {
            files_quarantined: quarantined_at_startup,
            ..Gauges::default()
        }),
        supervisor: Supervisor::new(workers, supervisor_cfg),
        // lint:allow(hot-path-lock): touched at spawn/shutdown only
        worker_handles: Mutex::new(Vec::new()),
        cfg,
    });

    for slot in 0..workers {
        spawn_worker(&shared, slot, 0);
    }

    // The supervisor thread: ticks the heartbeat watchdog and respawns
    // poisoned slots whose cooldown has elapsed.
    let supervisor = {
        let shared = Arc::clone(&shared);
        let interval = shared.cfg.supervisor.watchdog_interval.max(Duration::from_millis(1));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if shared.is_shutdown() {
                return;
            }
            let now = Instant::now();
            shared.supervisor.scan(now);
            for (slot, generation) in shared.supervisor.claim_respawns(now) {
                spawn_worker(&shared, slot, generation);
            }
        })
    };

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.is_shutdown() {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let over = {
                    let mut g = lock::recover("gauges", &shared.gauges);
                    if g.connections_open >= shared.cfg.max_connections as u64 {
                        true
                    } else {
                        g.connections_open += 1;
                        g.connections_total += 1;
                        false
                    }
                };
                if over {
                    // Refuse politely in text form; binary clients still
                    // see a clean close.
                    let mut s = stream;
                    let _ = write_text(
                        &mut s,
                        &Response::Error {
                            code: code::TOO_MANY_CONNECTIONS,
                            message: "connection limit reached".into(),
                        },
                    );
                    continue;
                }
                let shared2 = Arc::clone(&shared);
                std::thread::spawn(move || {
                    handle_connection(&shared2, stream);
                    lock::recover("gauges", &shared2.gauges).connections_open -= 1;
                });
            }
        })
    };

    Ok(ServerHandle { addr, shared, accept: Some(accept), supervisor: Some(supervisor) })
}

/// Spawn one engine worker generation into `slot` and record its handle
/// for shutdown joining.
fn spawn_worker(shared: &Arc<Shared>, slot: usize, generation: u64) {
    let shared2 = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_loop(&shared2, slot, generation));
    lock::recover("worker_handles", &shared.worker_handles).push(handle);
}

/// Run [`sssp_core::manifest::recover_directory`] over every per-graph
/// checkpoint subdir under `root`; returns how many files were moved to
/// quarantine.
fn quarantine_scan(root: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(root) else { return 0 };
    let mut quarantined = 0u64;
    for entry in entries.flatten() {
        let path = entry.path();
        // Per-graph subdirs are 16 lowercase hex digits (the graph
        // fingerprint); anything else — including `quarantine/` itself —
        // is not ours to touch.
        let is_graph_dir = path.is_dir()
            && entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.len() == 16 && n.bytes().all(|b| b.is_ascii_hexdigit()));
        if !is_graph_dir {
            continue;
        }
        match sssp_core::manifest::recover_directory(&path) {
            Ok(report) => {
                for q in &report.quarantined {
                    eprintln!(
                        "sssp-serve: quarantined corrupt checkpoint data: {}",
                        q.display()
                    );
                }
                quarantined += report.quarantined.len() as u64;
            }
            Err(e) => eprintln!(
                "sssp-serve: checkpoint recovery failed for {}: {e}",
                path.display()
            ),
        }
    }
    quarantined
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect_text(addr: SocketAddr) -> TcpStream {
        TcpStream::connect(addr).expect("connect")
    }

    /// Send one text request and collect the reply lines (without the
    /// terminator).
    fn ask(stream: &mut TcpStream, line: &str) -> Vec<String> {
        stream.write_all(format!("{line}\n").as_bytes()).expect("send");
        let mut reply = Vec::new();
        let reader = stream.try_clone().expect("clone");
        for l in BufReader::new(reader).lines() {
            let l = l.expect("reply line");
            if l == TEXT_TERMINATOR {
                break;
            }
            reply.push(l);
        }
        reply
    }

    fn load_grid(stream: &mut TcpStream) -> u64 {
        let reply = ask(stream, "LOAD GEN grid:6x6");
        let line = &reply[0];
        assert!(line.starts_with("LOADED"), "{line}");
        let fp = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix("fingerprint="))
            .expect("fingerprint field");
        u64::from_str_radix(fp, 16).expect("hex fingerprint")
    }

    #[test]
    fn text_conversation_covers_load_run_and_stats() {
        let server = start(ServerConfig::default(), "127.0.0.1:0").unwrap();
        let mut c = connect_text(server.addr());
        assert_eq!(ask(&mut c, "PING"), ["PONG"]);
        let fp = load_grid(&mut c);
        // Idempotent reload of the same graph.
        assert_eq!(load_grid(&mut c), fp);

        let ok = ask(&mut c, &format!("SSSP {fp:016x} 0"));
        assert!(ok[0].starts_with("OK "), "{ok:?}");
        assert!(ok[0].contains("reached=36"), "grid 6x6 fully reachable: {ok:?}");

        let stats = ask(&mut c, "STATS");
        assert!(stats.iter().any(|l| l == "graphs_loaded=1"), "{stats:?}");
        assert!(stats.iter().any(|l| l == "jobs_completed=1"), "{stats:?}");
        assert_eq!(ask(&mut c, "QUIT"), ["DONE"]);
        server.shutdown();
    }

    #[test]
    fn binary_conversation_matches_text_results() {
        let server = start(ServerConfig::default(), "127.0.0.1:0").unwrap();

        let mut text = connect_text(server.addr());
        let fp = load_grid(&mut text);
        let ok = ask(&mut text, &format!("SSSP {fp:016x} 0"));
        let text_fnv = ok[0]
            .split_whitespace()
            .find_map(|w| w.strip_prefix("dist_fnv="))
            .map(|h| u64::from_str_radix(h, 16).unwrap())
            .expect("dist_fnv field");

        let mut bin = TcpStream::connect(server.addr()).unwrap();
        let send = |s: &mut TcpStream, req: &Request| {
            let (op, payload) = protocol::encode_request(req);
            protocol::write_frame(s, op, &payload).unwrap();
            let (rop, rpayload) = protocol::read_frame(s, true).unwrap();
            protocol::decode_response(rop, &rpayload).unwrap()
        };
        assert_eq!(send(&mut bin, &Request::Ping), Response::Pong);
        let resp = send(
            &mut bin,
            &Request::Sssp(SsspRequest {
                fingerprint: fp,
                source: 0,
                delta: None,
                deadline_ms: None,
                epochs: None,
                implementation: None,
                strategy: None,
                full: true,
            }),
        );
        let Response::Summary(s) = resp else { panic!("expected summary, got {resp:?}") };
        assert_eq!(s.dist_fnv, text_fnv, "binary and text agree bit-for-bit");
        let dist = s.full.expect("full dump requested");
        assert_eq!(dist_digest(&dist), text_fnv);
        server.shutdown();
    }

    #[test]
    fn unknown_graphs_bad_requests_and_debug_gate_are_typed_errors() {
        let server = start(ServerConfig::default(), "127.0.0.1:0").unwrap();
        let mut c = connect_text(server.addr());
        let missing = ask(&mut c, "SSSP 00000000000000ff 0");
        assert!(
            missing[0].starts_with(&format!("ERROR code={}", code::UNKNOWN_GRAPH)),
            "{missing:?}"
        );
        let garbled = ask(&mut c, "FROB 1 2");
        assert!(
            garbled[0].starts_with(&format!("ERROR code={}", code::BAD_REQUEST)),
            "{garbled:?}"
        );
        let held = ask(&mut c, "HOLD");
        assert!(
            held[0].starts_with(&format!("ERROR code={}", code::DEBUG_DISABLED)),
            "debug commands are off by default: {held:?}"
        );
        let fp = load_grid(&mut c);
        let oob = ask(&mut c, &format!("SSSP {fp:016x} 9999"));
        assert!(oob[0].starts_with("ERROR code=13"), "{oob:?}");
        server.shutdown();
    }

    #[test]
    fn epoch_budget_yields_a_certified_partial_with_a_saved_checkpoint() {
        let dir = std::env::temp_dir().join(format!("serve-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let server = start(cfg, "127.0.0.1:0").unwrap();
        let mut c = connect_text(server.addr());
        let fp = {
            let reply = ask(&mut c, "LOAD GEN grid:40x40");
            let fpw = reply[0]
                .split_whitespace()
                .find_map(|w| w.strip_prefix("fingerprint="))
                .unwrap();
            u64::from_str_radix(fpw, 16).unwrap()
        };
        let partial = ask(&mut c, &format!("SSSP {fp:016x} 0 epochs=3"));
        assert!(partial[0].starts_with("PARTIAL"), "{partial:?}");
        assert!(partial[0].contains("code=15"), "epoch budget is wire code 15: {partial:?}");
        assert!(partial[0].contains("saved=ckpt-0.bin"), "{partial:?}");
        let sub = dir.join(format!("{fp:016x}"));
        assert!(sub.join("ckpt-0.bin").exists());
        assert!(sub.join(CheckpointManifest::FILE_NAME).exists());

        // Finishing the job drains both the checkpoint and its manifest
        // entry, and counts as a resume.
        let ok = ask(&mut c, &format!("SSSP {fp:016x} 0"));
        assert!(ok[0].starts_with("OK "), "{ok:?}");
        assert!(!sub.join("ckpt-0.bin").exists());
        let stats = server.stats();
        assert_eq!(stats.get("jobs_resumed"), Some(1));
        assert_eq!(stats.get("jobs_partial"), Some(1));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `Shared` with no pool and no graphs — enough to exercise the
    /// outcome-to-response mapping without sockets or workers.
    fn bare_shared(queue_capacity: usize) -> Shared {
        Shared {
            cfg: ServerConfig::default(),
            // lint:allow(hot-path-lock): test fixture mirroring the registry lock
            graphs: Mutex::new(HashMap::new()),
            cache: Arc::new(sssp_core::SplitCache::new()),
            pool: None,
            pool_degraded: None,
            queue: AdmissionQueue::new(queue_capacity),
            // lint:allow(hot-path-lock): test fixture mirroring the gauges lock
            gauges: Mutex::new(Gauges::default()),
            supervisor: Supervisor::new(1, SupervisorConfig::default()),
            // lint:allow(hot-path-lock): test fixture mirroring the handle list lock
            worker_handles: Mutex::new(Vec::new()),
        }
    }

    fn dummy_request() -> SsspRequest {
        SsspRequest {
            fingerprint: 0,
            source: 0,
            delta: None,
            deadline_ms: None,
            epochs: None,
            implementation: None,
            strategy: None,
            full: false,
        }
    }

    #[test]
    fn rejected_outcome_replies_with_a_live_hint_not_the_shutdown_sentinel() {
        let shared = bare_shared(1);
        let mut poisoned = None;
        let resp = outcome_response(
            &shared,
            &dummy_request(),
            false,
            &mut poisoned,
            BatchOutcome::Rejected { queue_capacity: 1 },
        );
        let Response::Overloaded { retry_after_ms } = resp else {
            panic!("expected Overloaded, got {resp:?}");
        };
        assert!(retry_after_ms >= 1, "0 is the shutdown sentinel; a rejection must never use it");
        assert_eq!(retry_after_ms, shared.queue.retry_hint(), "hint comes from the queue formula");
    }

    #[test]
    fn non_panic_error_mentioning_panic_does_not_poison_the_worker() {
        let shared = bare_shared(1);
        let mut poisoned = None;
        let resp = outcome_response(
            &shared,
            &dummy_request(),
            false,
            &mut poisoned,
            BatchOutcome::Failed {
                error: "checkpoint I/O failed at /srv/panic-drills/ckpt-0.bin: disk full".into(),
                panicked: false,
            },
        );
        assert!(matches!(resp, Response::Error { .. }));
        assert!(poisoned.is_none(), "the word \"panic\" in an error message must not poison");
        assert_eq!(lock::recover("gauges", &shared.gauges).degraded_workers, 0);

        // The typed marker — and only it — poisons.
        let _ = outcome_response(
            &shared,
            &dummy_request(),
            false,
            &mut poisoned,
            BatchOutcome::Failed { error: "worker panicked (boom)".into(), panicked: true },
        );
        assert!(poisoned.is_some(), "a typed panic must poison the worker");
        let g = lock::recover("gauges", &shared.gauges);
        assert_eq!(g.degraded_workers, 1);
        assert_eq!(g.jobs_failed, 2);
    }

    #[test]
    fn health_probe_drain_op_and_live_hints_walk_the_drain_path() {
        let cfg = ServerConfig { debug_commands: true, workers: 1, ..Default::default() };
        let server = start(cfg, "127.0.0.1:0").unwrap();
        let mut c = connect_text(server.addr());
        let fp = load_grid(&mut c);
        let h = server.health();
        assert_eq!(h.status, "ok");
        assert_eq!((h.workers, h.healthy, h.draining), (1, 1, false));
        let probe = ask(&mut c, "HEALTH");
        assert!(probe[0].starts_with("HEALTH status=ok workers=1 healthy=1 "), "{probe:?}");

        // Park a job in the queue behind HOLD, then drain: the waiting
        // job must be answered with a *live* retry hint, never the
        // shutdown sentinel 0.
        assert_eq!(ask(&mut c, "HOLD"), ["DONE"]);
        let addr = server.addr();
        let waiter = std::thread::spawn(move || {
            let mut c2 = connect_text(addr);
            ask(&mut c2, &format!("SSSP {fp:016x} 0"))
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().get("queue_depth") != Some(1) {
            assert!(Instant::now() < deadline, "job never queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ask(&mut c, "DRAIN"), ["DONE"]);
        let shed = waiter.join().unwrap();
        assert!(shed[0].starts_with("OVERLOADED retry_after_ms="), "{shed:?}");
        let hint: u64 = shed[0].split('=').nth(1).unwrap().parse().unwrap();
        assert!(hint >= 1, "shed jobs get a live hint, not the shutdown sentinel");

        // New submissions shed immediately, also with a live hint, and
        // control traffic stays responsive.
        let refused = ask(&mut c, &format!("SSSP {fp:016x} 0"));
        assert!(refused[0].starts_with("OVERLOADED retry_after_ms="), "{refused:?}");
        assert_eq!(ask(&mut c, "PING"), ["PONG"]);
        let h = server.health();
        assert_eq!(h.status, "draining");
        assert!(h.draining);
        assert!(server.drain_requested());
        // Nothing is running, so the bounded drain completes clean.
        assert!(server.drain(Duration::from_secs(5)));
    }

    #[test]
    fn drain_is_debug_gated() {
        let server = start(ServerConfig::default(), "127.0.0.1:0").unwrap();
        let mut c = connect_text(server.addr());
        let refused = ask(&mut c, "DRAIN");
        assert!(
            refused[0].starts_with(&format!("ERROR code={}", code::DEBUG_DISABLED)),
            "{refused:?}"
        );
        assert!(!server.drain_requested());
        server.shutdown();
    }

    /// The recycling chaos test: a panic-injected worker serves its job
    /// degraded (sequential-fused retry), retires, and is replaced by a
    /// fresh worker that serves the *requested* implementation again —
    /// at every pool width the service runs with.
    #[test]
    fn panic_poisoned_worker_is_recycled_and_serves_the_requested_impl_again() {
        for pool_threads in [1usize, 2, 4] {
            let cfg = ServerConfig {
                workers: 1,
                pool_threads,
                supervisor: SupervisorConfig {
                    cooldown: Duration::from_millis(50),
                    watchdog_interval: Duration::from_millis(5),
                    ..SupervisorConfig::default()
                },
                ..ServerConfig::default()
            };
            let server = start(cfg, "127.0.0.1:0").unwrap();
            let mut c = connect_text(server.addr());
            let fp = load_grid(&mut c);

            taskpool::fault::arm_panic_after(0);
            let degraded = ask(&mut c, &format!("SSSP {fp:016x} 0 impl=improved"));
            taskpool::fault::disarm();
            assert!(
                degraded[0].starts_with("DEGRADED"),
                "injected panic must degrade ({pool_threads} threads): {degraded:?}"
            );
            assert!(degraded[1].starts_with("OK "), "{degraded:?}");

            // The worker retired; the supervisor recycles the slot after
            // its cooldown.
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                let stats = server.stats();
                if stats.get("workers_healthy") == Some(1)
                    && stats.get("worker_recycles") >= Some(1)
                {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "slot never recycled ({pool_threads} threads): {stats:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }

            // A later job on the same connection gets the requested
            // implementation, undegraded.
            let ok = ask(&mut c, &format!("SSSP {fp:016x} 0 impl=improved"));
            assert!(
                ok[0].starts_with("OK "),
                "recycled worker serves the requested impl ({pool_threads} threads): {ok:?}"
            );
            assert_eq!(server.health().status, "ok");
            server.shutdown();
        }
    }

    /// Satellite regression: a handler that panics while holding a
    /// serve-layer lock poisons the mutex, and the next request still
    /// gets served over the intact state.
    #[test]
    fn panicked_lock_holder_does_not_wedge_later_requests() {
        let shared = bare_shared(1);
        lock::recover("gauges", &shared.gauges).jobs_completed = 7;
        taskpool::fault::arm_lock_poison();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = shared.stats();
        }));
        assert!(crashed.is_err(), "armed hook must panic inside stats()");
        // Whichever lock the injected panic landed on is poisoned now;
        // the recovery helper still serves the next snapshot.
        let stats = shared.stats();
        assert_eq!(stats.get("jobs_completed"), Some(7));
        assert_eq!(stats.get("files_quarantined"), Some(0));
    }

    #[test]
    fn classify_failure_inverts_display_strings() {
        let cases: [(SsspError, u8); 5] = [
            (SsspError::InvalidDelta { delta: -1.0 }, 14),
            (SsspError::SourceOutOfBounds { source: 9, num_vertices: 3 }, 13),
            (SsspError::InvalidCheckpoint { reason: "x".into() }, 18),
            (
                SsspError::CheckpointIo { path: "p".into(), message: "m".into() },
                19,
            ),
            (SsspError::WorkerPanicked { message: "boom".into() }, 20),
        ];
        for (err, want) in cases {
            assert_eq!(classify_failure(&err.to_string()), want, "{err}");
            assert_eq!(protocol::wire_code(&err), want, "typed path agrees: {err}");
        }
        assert_eq!(classify_failure("something else entirely"), code::JOB_FAILED);
    }
}
