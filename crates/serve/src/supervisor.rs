//! Worker supervision for the resident service: the state machine that
//! turns "a worker panicked once" from a process-lifetime degradation
//! into a transient, observable incident.
//!
//! Each engine worker owns one **slot**. Slots walk a four-state
//! machine:
//!
//! ```text
//! healthy ──panic──▶ poisoned ──cooldown·2^recycles──▶ recycled (healthy,
//!    ▲                  │                               fresh thread)
//!    └──────────────────┘
//! poisoned ──recycles ≥ max_recycles──▶ permanently-degraded
//! ```
//!
//! * **healthy** — the worker serves the requested implementation.
//! * **poisoned** — the worker saw a typed panic marker
//!   ([`BatchOutcome`](sssp_core::BatchOutcome) `degraded_by_panic` /
//!   `panicked`) and retired itself; no thread serves the slot while the
//!   exponential-backoff cooldown runs.
//! * **recycled** — the supervisor spawned a fresh worker thread (new
//!   generation) into the slot; service of the requested implementation
//!   resumes.
//! * **permanently-degraded** — the slot poisoned more than
//!   [`SupervisorConfig::max_recycles`] times; its worker keeps serving,
//!   sticky on the sequential-fused path, and stops being recycled (the
//!   escape hatch for a workload that panics deterministically).
//!
//! The supervisor also runs the **job heartbeat watchdog**: every
//! running job registers its [`CancelToken`] and a [`ProgressGauge`]
//! that the job's [`RunBudget`](sssp_core::RunBudget) bumps at each
//! epoch check. A job whose gauge stops advancing for
//! [`SupervisorConfig::heartbeat_grace`] (and which is past any
//! wall-clock deadline it carries) is cancelled through its token — the
//! run stops at the next epoch boundary with a certified partial — and
//! the worker is treated as suspect. A worker that does not even reach
//! the next epoch boundary (truly wedged inside a kernel) is abandoned:
//! its slot is re-poisoned and respawned, and the stale thread's later
//! reports are ignored by generation check.
//!
//! Every transition is decided by the pure
//! [`SlotCore`](crate::proto::slot::SlotCore) (on `u64` millisecond
//! ticks, which is what lets `crates/modelcheck` drive it exhaustively);
//! this wrapper owns the `Instant` clock, the cancel tokens, and the
//! progress gauges. The driving thread (spawned by `server::start`)
//! ticks [`Supervisor::scan`] and [`Supervisor::claim_respawns`].

use std::sync::Mutex; // lint:allow(hot-path-lock): supervisor control plane, touched per job transition and per tick, never per edge relaxation
use std::time::{Duration, Instant};

use sssp_core::budget::{CancelToken, ProgressGauge};

use crate::lock;
use crate::proto::slot::{ScanVerdict, SlotCore};

pub use crate::proto::slot::{PoisonVerdict, SlotHealth};

/// Tunables for worker recycling and the job heartbeat watchdog.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Base cooldown before a poisoned slot is recycled; doubles per
    /// recycle already served (exponential backoff).
    pub cooldown: Duration,
    /// After this many recycles, the next poisoning is permanent: the
    /// slot keeps its degraded worker and is never recycled again.
    pub max_recycles: u32,
    /// How long a running job's progress gauge may stand still (past
    /// its deadline, if it has one) before the watchdog cancels it.
    pub heartbeat_grace: Duration,
    /// How often the supervisor thread ticks.
    pub watchdog_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            cooldown: Duration::from_millis(200),
            max_recycles: 5,
            // Generous by default: epochs are sub-second on everything
            // the service is sized for, and a false stall verdict
            // cancels real work.
            heartbeat_grace: Duration::from_secs(5),
            watchdog_interval: Duration::from_millis(20),
        }
    }
}

/// One slot: the pure decision core plus the real-world levers the
/// verdicts act on.
#[derive(Debug)]
struct Slot {
    core: SlotCore,
    /// The active job's cancel lever, present iff `core.active` is.
    token: Option<CancelToken>,
    /// The active job's heartbeat source, present iff `core.active` is.
    gauge: Option<ProgressGauge>,
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    recycles_total: u64,
    watchdog_cancelled: u64,
}

/// Aggregate health, the payload behind the `HEALTH` wire op and the
/// supervision STATS gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthCounts {
    /// Total worker slots.
    pub workers: u64,
    /// Slots with a live worker on the requested implementation.
    pub healthy: u64,
    /// Slots waiting out a post-panic cooldown.
    pub poisoned: u64,
    /// Slots pinned to sequential-fused forever.
    pub permanently_degraded: u64,
    /// Respawns performed over the process lifetime.
    pub recycles_total: u64,
    /// Jobs the heartbeat watchdog cancelled.
    pub watchdog_cancelled: u64,
}

/// The supervision state shared by workers, the supervisor thread, and
/// the wire front end. See the module docs for the state machine.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Anchor for the `Instant` → tick conversion the cores run on.
    epoch: Instant,
    inner: Mutex<Inner>, // lint:allow(hot-path-lock): control plane, per-job not per-edge
}

impl Supervisor {
    /// A supervisor over `workers` healthy slots.
    pub fn new(workers: usize, cfg: SupervisorConfig) -> Self {
        Supervisor {
            cfg,
            epoch: Instant::now(),
            // lint:allow(hot-path-lock): control plane, per-job not per-edge
            inner: Mutex::new(Inner {
                slots: (0..workers.max(1))
                    .map(|_| Slot {
                        core: SlotCore::new(0),
                        token: None,
                        gauge: None,
                    })
                    .collect(),
                recycles_total: 0,
                watchdog_cancelled: 0,
            }),
        }
    }

    /// Millisecond ticks since construction — the time base the pure
    /// cores run on.
    fn ticks(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.epoch).as_millis() as u64
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Number of slots.
    pub fn workers(&self) -> usize {
        lock::recover("supervisor.inner", &self.inner).slots.len()
    }

    /// A worker observed a typed panic marker on `slot`. Returns what
    /// the worker must do; see [`PoisonVerdict`].
    pub fn report_poisoned(&self, slot: usize, generation: u64, reason: &str) -> PoisonVerdict {
        let now = self.ticks(Instant::now());
        let mut inner = lock::recover("supervisor.inner", &self.inner);
        let s = &mut inner.slots[slot];
        let verdict = s.core.report_poisoned(generation, now, self.cfg.max_recycles, reason);
        if s.core.active.is_none() {
            s.token = None;
            s.gauge = None;
        }
        verdict
    }

    /// Claim every poisoned slot whose backoff has elapsed: each is
    /// transitioned back to `Healthy` under a fresh generation, and the
    /// caller must spawn a worker thread for each `(slot, generation)`
    /// returned.
    pub fn claim_respawns(&self, now: Instant) -> Vec<(usize, u64)> {
        let now = self.ticks(now);
        let cooldown = self.cfg.cooldown.as_millis() as u64;
        let mut inner = lock::recover("supervisor.inner", &self.inner);
        let mut due = Vec::new();
        let mut recycled = 0u64;
        for (idx, s) in inner.slots.iter_mut().enumerate() {
            if let Some(generation) = s.core.claim_respawn(now, cooldown) {
                s.token = None;
                s.gauge = None;
                recycled += 1;
                due.push((idx, generation));
            }
        }
        inner.recycles_total += recycled;
        due
    }

    /// Register a job that just started executing on `slot`. The token
    /// is the job's own cancel lever; the gauge is bumped by the job's
    /// budget checks.
    pub fn job_started(
        &self,
        slot: usize,
        generation: u64,
        token: CancelToken,
        progress: ProgressGauge,
        deadline: Option<Duration>,
    ) {
        let now = self.ticks(Instant::now());
        let deadline = deadline.map(|d| d.as_millis() as u64);
        let mut inner = lock::recover("supervisor.inner", &self.inner);
        let s = &mut inner.slots[slot];
        if s.core.job_started(generation, now, deadline) {
            s.token = Some(token);
            s.gauge = Some(progress);
        }
    }

    /// Deregister `slot`'s job; returns whether the watchdog cancelled
    /// it (the worker should then treat itself as suspect and report
    /// poisoning).
    pub fn job_finished(&self, slot: usize, generation: u64) -> bool {
        let mut inner = lock::recover("supervisor.inner", &self.inner);
        let s = &mut inner.slots[slot];
        let cancelled = s.core.job_finished(generation);
        if s.core.active.is_none() {
            s.token = None;
            s.gauge = None;
        }
        cancelled
    }

    /// One watchdog pass over every active job:
    ///
    /// * progress advanced → note it, all good;
    /// * stalled past `heartbeat_grace` (and past the job's deadline,
    ///   when it carries one) → cancel through the job's token;
    /// * *still* stalled a full grace after the cancel → the worker is
    ///   not even reaching its next budget check: abandon it (poison the
    ///   slot so [`Supervisor::claim_respawns`] replaces the thread; the
    ///   wedged thread's eventual report is ignored by generation).
    pub fn scan(&self, now: Instant) {
        let now = self.ticks(now);
        let grace = self.cfg.heartbeat_grace.as_millis() as u64;
        let mut inner = lock::recover("supervisor.inner", &self.inner);
        let mut cancelled = 0u64;
        for s in inner.slots.iter_mut() {
            let progress = match (&s.core.active, &s.gauge) {
                (Some(_), Some(g)) => g.get(),
                _ => continue,
            };
            match s.core.scan(now, progress, grace) {
                ScanVerdict::Ok => {}
                ScanVerdict::Cancel => {
                    if let Some(token) = &s.token {
                        token.cancel();
                    }
                    cancelled += 1;
                }
                ScanVerdict::Abandon => {
                    s.token = None;
                    s.gauge = None;
                }
            }
        }
        inner.watchdog_cancelled += cancelled;
    }

    /// Cancel every active job (graceful drain: in-flight work stops at
    /// the next epoch boundary as certified partials).
    pub fn cancel_active(&self) {
        let inner = lock::recover("supervisor.inner", &self.inner);
        for s in &inner.slots {
            if let (Some(_), Some(token)) = (&s.core.active, &s.token) {
                token.cancel();
            }
        }
    }

    /// Aggregate counts for HEALTH/STATS.
    pub fn health(&self) -> HealthCounts {
        let inner = lock::recover("supervisor.inner", &self.inner);
        let mut counts = HealthCounts {
            workers: inner.slots.len() as u64,
            recycles_total: inner.recycles_total,
            watchdog_cancelled: inner.watchdog_cancelled,
            ..HealthCounts::default()
        };
        for s in &inner.slots {
            match s.core.health {
                SlotHealth::Healthy => counts.healthy += 1,
                SlotHealth::Poisoned => counts.poisoned += 1,
                SlotHealth::PermanentlyDegraded => counts.permanently_degraded += 1,
            }
        }
        counts
    }

    /// Whether `generation` is still the live generation of `slot`. A
    /// worker abandoned by the watchdog discovers here that it was
    /// replaced and must exit instead of competing with its successor.
    pub fn is_current(&self, slot: usize, generation: u64) -> bool {
        lock::recover("supervisor.inner", &self.inner).slots[slot].core.generation == generation
    }

    /// The health of one slot (tests and diagnostics).
    pub fn slot_health(&self, slot: usize) -> SlotHealth {
        lock::recover("supervisor.inner", &self.inner).slots[slot].core.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> SupervisorConfig {
        SupervisorConfig {
            cooldown: Duration::from_millis(10),
            max_recycles: 2,
            heartbeat_grace: Duration::from_millis(30),
            watchdog_interval: Duration::from_millis(5),
        }
    }

    #[test]
    fn poison_retire_recycle_walks_the_state_machine() {
        let sup = Supervisor::new(1, fast_cfg());
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        assert_eq!(sup.report_poisoned(0, 0, "boom"), PoisonVerdict::Retire);
        assert_eq!(sup.slot_health(0), SlotHealth::Poisoned);
        // Not due before the cooldown.
        assert!(sup.claim_respawns(Instant::now()).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        let due = sup.claim_respawns(Instant::now());
        assert_eq!(due, vec![(0, 1)]);
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        let counts = sup.health();
        assert_eq!(counts.recycles_total, 1);
        assert_eq!(counts.healthy, 1);
    }

    #[test]
    fn backoff_doubles_and_caps_at_permanent_degradation() {
        let sup = Supervisor::new(1, fast_cfg());
        // Recycle twice (max_recycles = 2), with the second cooldown
        // observably longer than the first.
        assert_eq!(sup.report_poisoned(0, 0, "p1"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(0, 1)]);
        assert_eq!(sup.report_poisoned(0, 1, "p2"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        // One recycle served → backoff is 2×10ms; 15ms is not enough.
        assert!(sup.claim_respawns(Instant::now()).is_empty());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(0, 2)]);
        // Third poisoning: recycles (2) ≥ max_recycles (2) → permanent.
        assert_eq!(sup.report_poisoned(0, 2, "p3"), PoisonVerdict::KeepServing);
        assert_eq!(sup.slot_health(0), SlotHealth::PermanentlyDegraded);
        std::thread::sleep(Duration::from_millis(80));
        assert!(sup.claim_respawns(Instant::now()).is_empty(), "permanent slots never respawn");
        let counts = sup.health();
        assert_eq!(counts.permanently_degraded, 1);
        assert_eq!(counts.recycles_total, 2);
    }

    #[test]
    fn stale_generation_reports_are_ignored() {
        let sup = Supervisor::new(2, fast_cfg());
        assert_eq!(sup.report_poisoned(1, 0, "boom"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(1, 1)]);
        // The retired generation-0 thread reports again: told to go
        // away, and the live slot stays healthy.
        assert_eq!(sup.report_poisoned(1, 0, "late echo"), PoisonVerdict::Retire);
        assert_eq!(sup.slot_health(1), SlotHealth::Healthy);
        // Its job bookkeeping is ignored too.
        sup.job_started(1, 0, CancelToken::new(), ProgressGauge::new(), None);
        assert_eq!(sup.health().healthy, 2);
        assert!(!sup.job_finished(1, 0));
    }

    #[test]
    fn watchdog_cancels_a_stalled_job_then_abandons_a_wedged_worker() {
        let sup = Supervisor::new(1, fast_cfg());
        let token = CancelToken::new();
        let gauge = ProgressGauge::new();
        sup.job_started(0, 0, token.clone(), gauge.clone(), Some(Duration::from_millis(1)));
        let t0 = Instant::now();
        // Advancing progress is never cancelled, no matter how long it
        // runs past its deadline.
        for tick in 1..=3u64 {
            gauge.publish(tick);
            sup.scan(t0 + Duration::from_millis(40 * tick));
            assert!(!token.is_cancelled());
        }
        // Now the gauge stands still (last advance seen at t0+120ms):
        // the job survives inside the grace window and is cancelled
        // through its token once the stall exceeds it.
        sup.scan(t0 + Duration::from_millis(140));
        assert!(!token.is_cancelled(), "stall shorter than grace is tolerated");
        sup.scan(t0 + Duration::from_millis(160));
        assert!(token.is_cancelled(), "stalled past grace and deadline");
        assert_eq!(sup.health().watchdog_cancelled, 1);
        // The cooperative path: the worker notices at its next epoch
        // boundary and job_finished reports the watchdog verdict.
        assert!(sup.job_finished(0, 0));

        // The wedged path: a second job stalls, is cancelled, and never
        // reaches another budget check — the slot is abandoned.
        let token2 = CancelToken::new();
        sup.job_started(0, 0, token2.clone(), ProgressGauge::new(), None);
        let t1 = Instant::now();
        sup.scan(t1 + Duration::from_millis(40));
        assert!(token2.is_cancelled());
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        sup.scan(t1 + Duration::from_millis(80));
        assert_eq!(sup.slot_health(0), SlotHealth::Poisoned, "wedged worker abandoned");
    }

    #[test]
    fn cancel_active_hits_every_running_job() {
        let sup = Supervisor::new(3, SupervisorConfig::default());
        let tokens: Vec<CancelToken> = (0..3).map(|_| CancelToken::new()).collect();
        for (slot, token) in tokens.iter().enumerate() {
            sup.job_started(slot, 0, token.clone(), ProgressGauge::new(), None);
        }
        sup.cancel_active();
        for token in &tokens {
            assert!(token.is_cancelled());
        }
    }
}
