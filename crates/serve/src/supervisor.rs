//! Worker supervision for the resident service: the state machine that
//! turns "a worker panicked once" from a process-lifetime degradation
//! into a transient, observable incident.
//!
//! Each engine worker owns one **slot**. Slots walk a four-state
//! machine:
//!
//! ```text
//! healthy ──panic──▶ poisoned ──cooldown·2^recycles──▶ recycled (healthy,
//!    ▲                  │                               fresh thread)
//!    └──────────────────┘
//! poisoned ──recycles ≥ max_recycles──▶ permanently-degraded
//! ```
//!
//! * **healthy** — the worker serves the requested implementation.
//! * **poisoned** — the worker saw a typed panic marker
//!   ([`BatchOutcome`](sssp_core::BatchOutcome) `degraded_by_panic` /
//!   `panicked`) and retired itself; no thread serves the slot while the
//!   exponential-backoff cooldown runs.
//! * **recycled** — the supervisor spawned a fresh worker thread (new
//!   generation) into the slot; service of the requested implementation
//!   resumes.
//! * **permanently-degraded** — the slot poisoned more than
//!   [`SupervisorConfig::max_recycles`] times; its worker keeps serving,
//!   sticky on the sequential-fused path, and stops being recycled (the
//!   escape hatch for a workload that panics deterministically).
//!
//! The supervisor also runs the **job heartbeat watchdog**: every
//! running job registers its [`CancelToken`] and a [`ProgressGauge`]
//! that the job's [`RunBudget`](sssp_core::RunBudget) bumps at each
//! epoch check. A job whose gauge stops advancing for
//! [`SupervisorConfig::heartbeat_grace`] (and which is past any
//! wall-clock deadline it carries) is cancelled through its token — the
//! run stops at the next epoch boundary with a certified partial — and
//! the worker is treated as suspect. A worker that does not even reach
//! the next epoch boundary (truly wedged inside a kernel) is abandoned:
//! its slot is re-poisoned and respawned, and the stale thread's later
//! reports are ignored by generation check.
//!
//! The struct is passive shared state plus cheap transitions; the
//! driving thread (spawned by `server::start`) ticks
//! [`Supervisor::scan`] and [`Supervisor::claim_respawns`].

use std::sync::Mutex; // lint:allow(hot-path-lock): supervisor control plane, touched per job transition and per tick, never per edge relaxation
use std::time::{Duration, Instant};

use sssp_core::budget::{CancelToken, ProgressGauge};

use crate::lock;

/// Tunables for worker recycling and the job heartbeat watchdog.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Base cooldown before a poisoned slot is recycled; doubles per
    /// recycle already served (exponential backoff).
    pub cooldown: Duration,
    /// After this many recycles, the next poisoning is permanent: the
    /// slot keeps its degraded worker and is never recycled again.
    pub max_recycles: u32,
    /// How long a running job's progress gauge may stand still (past
    /// its deadline, if it has one) before the watchdog cancels it.
    pub heartbeat_grace: Duration,
    /// How often the supervisor thread ticks.
    pub watchdog_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            cooldown: Duration::from_millis(200),
            max_recycles: 5,
            // Generous by default: epochs are sub-second on everything
            // the service is sized for, and a false stall verdict
            // cancels real work.
            heartbeat_grace: Duration::from_secs(5),
            watchdog_interval: Duration::from_millis(20),
        }
    }
}

/// Where a slot stands in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotHealth {
    /// A live worker serves the requested implementation.
    Healthy,
    /// The worker retired after a panic; the slot awaits its cooldown.
    Poisoned,
    /// Recycled too often: the worker keeps serving, sticky
    /// sequential-fused, and is never recycled again.
    PermanentlyDegraded,
}

/// What a worker reporting a panic must do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonVerdict {
    /// Exit the worker loop; the supervisor will respawn the slot after
    /// its cooldown.
    Retire,
    /// Keep serving (sticky sequential-fused): the slot is permanently
    /// degraded, or the report came from a stale generation.
    KeepServing,
}

/// A running job, as the watchdog sees it.
#[derive(Debug)]
struct ActiveJob {
    token: CancelToken,
    progress: ProgressGauge,
    started: Instant,
    deadline: Option<Duration>,
    last_progress: u64,
    last_advance: Instant,
    cancelled_by_watchdog: bool,
}

#[derive(Debug)]
struct Slot {
    health: SlotHealth,
    /// Why the slot last left `Healthy` (sticky through recycling for
    /// the HEALTH report).
    reason: Option<String>,
    /// When the slot entered `Poisoned` (cooldown anchor).
    since: Instant,
    recycles: u32,
    /// Bumped on every respawn; reports from older generations are
    /// ignored, so an abandoned wedged thread cannot poison its
    /// replacement.
    generation: u64,
    active: Option<ActiveJob>,
}

impl Slot {
    fn new(now: Instant) -> Self {
        Slot {
            health: SlotHealth::Healthy,
            reason: None,
            since: now,
            recycles: 0,
            generation: 0,
            active: None,
        }
    }

    fn backoff(&self, base: Duration) -> Duration {
        // Exponential in recycles already served, saturating well below
        // overflow; 2^16 × base is already "effectively never".
        base.saturating_mul(1u32 << self.recycles.min(16))
    }
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    recycles_total: u64,
    watchdog_cancelled: u64,
}

/// Aggregate health, the payload behind the `HEALTH` wire op and the
/// supervision STATS gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthCounts {
    /// Total worker slots.
    pub workers: u64,
    /// Slots with a live worker on the requested implementation.
    pub healthy: u64,
    /// Slots waiting out a post-panic cooldown.
    pub poisoned: u64,
    /// Slots pinned to sequential-fused forever.
    pub permanently_degraded: u64,
    /// Respawns performed over the process lifetime.
    pub recycles_total: u64,
    /// Jobs the heartbeat watchdog cancelled.
    pub watchdog_cancelled: u64,
}

/// The supervision state shared by workers, the supervisor thread, and
/// the wire front end. See the module docs for the state machine.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    inner: Mutex<Inner>, // lint:allow(hot-path-lock): control plane, per-job not per-edge
}

impl Supervisor {
    /// A supervisor over `workers` healthy slots.
    pub fn new(workers: usize, cfg: SupervisorConfig) -> Self {
        let now = Instant::now();
        Supervisor {
            cfg,
            // lint:allow(hot-path-lock): control plane, per-job not per-edge
            inner: Mutex::new(Inner {
                slots: (0..workers.max(1)).map(|_| Slot::new(now)).collect(),
                recycles_total: 0,
                watchdog_cancelled: 0,
            }),
        }
    }

    /// The active tunables.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Number of slots.
    pub fn workers(&self) -> usize {
        lock::recover(&self.inner).slots.len()
    }

    /// A worker observed a typed panic marker on `slot`. Returns what
    /// the worker must do; see [`PoisonVerdict`].
    pub fn report_poisoned(&self, slot: usize, generation: u64, reason: &str) -> PoisonVerdict {
        let mut inner = lock::recover(&self.inner);
        let s = &mut inner.slots[slot];
        if s.generation != generation {
            // A stale thread outlived its replacement decision; it must
            // just go away without touching the live slot.
            return PoisonVerdict::Retire;
        }
        s.reason = Some(reason.to_string());
        s.active = None;
        if s.health == SlotHealth::PermanentlyDegraded {
            return PoisonVerdict::KeepServing;
        }
        if s.recycles >= self.cfg.max_recycles {
            s.health = SlotHealth::PermanentlyDegraded;
            return PoisonVerdict::KeepServing;
        }
        s.health = SlotHealth::Poisoned;
        s.since = Instant::now();
        PoisonVerdict::Retire
    }

    /// Claim every poisoned slot whose backoff has elapsed: each is
    /// transitioned back to `Healthy` under a fresh generation, and the
    /// caller must spawn a worker thread for each `(slot, generation)`
    /// returned.
    pub fn claim_respawns(&self, now: Instant) -> Vec<(usize, u64)> {
        let mut inner = lock::recover(&self.inner);
        let cooldown = self.cfg.cooldown;
        let mut due = Vec::new();
        let mut recycled = 0u64;
        for (idx, s) in inner.slots.iter_mut().enumerate() {
            if s.health == SlotHealth::Poisoned
                && now.saturating_duration_since(s.since) >= s.backoff(cooldown)
            {
                s.health = SlotHealth::Healthy;
                s.recycles += 1;
                s.generation += 1;
                s.active = None;
                recycled += 1;
                due.push((idx, s.generation));
            }
        }
        inner.recycles_total += recycled;
        due
    }

    /// Register a job that just started executing on `slot`. The token
    /// is the job's own cancel lever; the gauge is bumped by the job's
    /// budget checks.
    pub fn job_started(
        &self,
        slot: usize,
        generation: u64,
        token: CancelToken,
        progress: ProgressGauge,
        deadline: Option<Duration>,
    ) {
        let mut inner = lock::recover(&self.inner);
        let s = &mut inner.slots[slot];
        if s.generation != generation {
            return;
        }
        let now = Instant::now();
        s.active = Some(ActiveJob {
            token,
            progress,
            started: now,
            deadline,
            last_progress: 0,
            last_advance: now,
            cancelled_by_watchdog: false,
        });
    }

    /// Deregister `slot`'s job; returns whether the watchdog cancelled
    /// it (the worker should then treat itself as suspect and report
    /// poisoning).
    pub fn job_finished(&self, slot: usize, generation: u64) -> bool {
        let mut inner = lock::recover(&self.inner);
        let s = &mut inner.slots[slot];
        if s.generation != generation {
            return false;
        }
        s.active
            .take()
            .map(|j| j.cancelled_by_watchdog)
            .unwrap_or(false)
    }

    /// One watchdog pass over every active job:
    ///
    /// * progress advanced → note it, all good;
    /// * stalled past `heartbeat_grace` (and past the job's deadline,
    ///   when it carries one) → cancel through the job's token;
    /// * *still* stalled a full grace after the cancel → the worker is
    ///   not even reaching its next budget check: abandon it (poison the
    ///   slot so [`Supervisor::claim_respawns`] replaces the thread; the
    ///   wedged thread's eventual report is ignored by generation).
    pub fn scan(&self, now: Instant) {
        let grace = self.cfg.heartbeat_grace;
        let mut inner = lock::recover(&self.inner);
        let mut cancelled = 0u64;
        for s in inner.slots.iter_mut() {
            let Some(job) = s.active.as_mut() else { continue };
            let p = job.progress.get();
            if p > job.last_progress {
                job.last_progress = p;
                job.last_advance = now;
                continue;
            }
            let stalled = now.saturating_duration_since(job.last_advance) >= grace;
            if !stalled {
                continue;
            }
            if !job.cancelled_by_watchdog {
                let past_deadline = job
                    .deadline
                    .map(|d| now.saturating_duration_since(job.started) >= d)
                    .unwrap_or(true);
                if past_deadline {
                    job.token.cancel();
                    job.cancelled_by_watchdog = true;
                    job.last_advance = now;
                    cancelled += 1;
                }
            } else if s.health == SlotHealth::Healthy {
                // Cancelled a full grace ago and still no epoch
                // boundary: the thread is wedged below the budget
                // checks. Abandon it.
                s.reason = Some("watchdog: worker wedged past cancellation".to_string());
                s.health = SlotHealth::Poisoned;
                s.since = now;
                s.active = None;
            }
        }
        inner.watchdog_cancelled += cancelled;
    }

    /// Cancel every active job (graceful drain: in-flight work stops at
    /// the next epoch boundary as certified partials).
    pub fn cancel_active(&self) {
        let inner = lock::recover(&self.inner);
        for s in &inner.slots {
            if let Some(job) = &s.active {
                job.token.cancel();
            }
        }
    }

    /// Aggregate counts for HEALTH/STATS.
    pub fn health(&self) -> HealthCounts {
        let inner = lock::recover(&self.inner);
        let mut counts = HealthCounts {
            workers: inner.slots.len() as u64,
            recycles_total: inner.recycles_total,
            watchdog_cancelled: inner.watchdog_cancelled,
            ..HealthCounts::default()
        };
        for s in &inner.slots {
            match s.health {
                SlotHealth::Healthy => counts.healthy += 1,
                SlotHealth::Poisoned => counts.poisoned += 1,
                SlotHealth::PermanentlyDegraded => counts.permanently_degraded += 1,
            }
        }
        counts
    }

    /// Whether `generation` is still the live generation of `slot`. A
    /// worker abandoned by the watchdog discovers here that it was
    /// replaced and must exit instead of competing with its successor.
    pub fn is_current(&self, slot: usize, generation: u64) -> bool {
        lock::recover(&self.inner).slots[slot].generation == generation
    }

    /// The health of one slot (tests and diagnostics).
    pub fn slot_health(&self, slot: usize) -> SlotHealth {
        lock::recover(&self.inner).slots[slot].health
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> SupervisorConfig {
        SupervisorConfig {
            cooldown: Duration::from_millis(10),
            max_recycles: 2,
            heartbeat_grace: Duration::from_millis(30),
            watchdog_interval: Duration::from_millis(5),
        }
    }

    #[test]
    fn poison_retire_recycle_walks_the_state_machine() {
        let sup = Supervisor::new(1, fast_cfg());
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        assert_eq!(sup.report_poisoned(0, 0, "boom"), PoisonVerdict::Retire);
        assert_eq!(sup.slot_health(0), SlotHealth::Poisoned);
        // Not due before the cooldown.
        assert!(sup.claim_respawns(Instant::now()).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        let due = sup.claim_respawns(Instant::now());
        assert_eq!(due, vec![(0, 1)]);
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        let counts = sup.health();
        assert_eq!(counts.recycles_total, 1);
        assert_eq!(counts.healthy, 1);
    }

    #[test]
    fn backoff_doubles_and_caps_at_permanent_degradation() {
        let sup = Supervisor::new(1, fast_cfg());
        // Recycle twice (max_recycles = 2), with the second cooldown
        // observably longer than the first.
        assert_eq!(sup.report_poisoned(0, 0, "p1"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(0, 1)]);
        assert_eq!(sup.report_poisoned(0, 1, "p2"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        // One recycle served → backoff is 2×10ms; 15ms is not enough.
        assert!(sup.claim_respawns(Instant::now()).is_empty());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(0, 2)]);
        // Third poisoning: recycles (2) ≥ max_recycles (2) → permanent.
        assert_eq!(sup.report_poisoned(0, 2, "p3"), PoisonVerdict::KeepServing);
        assert_eq!(sup.slot_health(0), SlotHealth::PermanentlyDegraded);
        std::thread::sleep(Duration::from_millis(80));
        assert!(sup.claim_respawns(Instant::now()).is_empty(), "permanent slots never respawn");
        let counts = sup.health();
        assert_eq!(counts.permanently_degraded, 1);
        assert_eq!(counts.recycles_total, 2);
    }

    #[test]
    fn stale_generation_reports_are_ignored() {
        let sup = Supervisor::new(2, fast_cfg());
        assert_eq!(sup.report_poisoned(1, 0, "boom"), PoisonVerdict::Retire);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(sup.claim_respawns(Instant::now()), vec![(1, 1)]);
        // The retired generation-0 thread reports again: told to go
        // away, and the live slot stays healthy.
        assert_eq!(sup.report_poisoned(1, 0, "late echo"), PoisonVerdict::Retire);
        assert_eq!(sup.slot_health(1), SlotHealth::Healthy);
        // Its job bookkeeping is ignored too.
        sup.job_started(1, 0, CancelToken::new(), ProgressGauge::new(), None);
        assert_eq!(sup.health().healthy, 2);
        assert!(!sup.job_finished(1, 0));
    }

    #[test]
    fn watchdog_cancels_a_stalled_job_then_abandons_a_wedged_worker() {
        let sup = Supervisor::new(1, fast_cfg());
        let token = CancelToken::new();
        let gauge = ProgressGauge::new();
        sup.job_started(0, 0, token.clone(), gauge.clone(), Some(Duration::from_millis(1)));
        let t0 = Instant::now();
        // Advancing progress is never cancelled, no matter how long it
        // runs past its deadline.
        for tick in 1..=3u64 {
            gauge.publish(tick);
            sup.scan(t0 + Duration::from_millis(40 * tick));
            assert!(!token.is_cancelled());
        }
        // Now the gauge stands still (last advance seen at t0+120ms):
        // the job survives inside the grace window and is cancelled
        // through its token once the stall exceeds it.
        sup.scan(t0 + Duration::from_millis(140));
        assert!(!token.is_cancelled(), "stall shorter than grace is tolerated");
        sup.scan(t0 + Duration::from_millis(160));
        assert!(token.is_cancelled(), "stalled past grace and deadline");
        assert_eq!(sup.health().watchdog_cancelled, 1);
        // The cooperative path: the worker notices at its next epoch
        // boundary and job_finished reports the watchdog verdict.
        assert!(sup.job_finished(0, 0));

        // The wedged path: a second job stalls, is cancelled, and never
        // reaches another budget check — the slot is abandoned.
        let token2 = CancelToken::new();
        sup.job_started(0, 0, token2.clone(), ProgressGauge::new(), None);
        let t1 = Instant::now();
        sup.scan(t1 + Duration::from_millis(40));
        assert!(token2.is_cancelled());
        assert_eq!(sup.slot_health(0), SlotHealth::Healthy);
        sup.scan(t1 + Duration::from_millis(80));
        assert_eq!(sup.slot_health(0), SlotHealth::Poisoned, "wedged worker abandoned");
    }

    #[test]
    fn cancel_active_hits_every_running_job() {
        let sup = Supervisor::new(3, SupervisorConfig::default());
        let tokens: Vec<CancelToken> = (0..3).map(|_| CancelToken::new()).collect();
        for (slot, token) in tokens.iter().enumerate() {
            sup.job_started(slot, 0, token.clone(), ProgressGauge::new(), None);
        }
        sup.cancel_active();
        for token in &tokens {
            assert!(token.is_cancelled());
        }
    }
}
