//! Resident SSSP service: a long-lived TCP front end over the batch
//! engine ([`sssp_core::BatchRunner`]), where graphs are loaded once and
//! addressed by [`graphdata::CsrGraph::fingerprint`] across many
//! requests — so the expensive artifacts (CSR build, light/heavy splits)
//! amortise across a workload instead of being rebuilt per process.
//!
//! The crate is organised around a robustness spine:
//!
//! - [`protocol`] — the wire vocabulary: length-prefixed binary frames
//!   plus a line-oriented text mode, typed error codes (an exhaustive
//!   [`protocol::wire_code`] mapping from [`sssp_core::SsspError`]), and
//!   the FNV-1a [`protocol::dist_digest`] bit-exactness certificate.
//! - [`queue`] — bounded admission with a **shed-don't-queue** overload
//!   policy: a request past the bound is refused immediately with a
//!   deterministic `retry_after_ms` computed from observed service time,
//!   never parked on an unbounded queue.
//! - [`server`] — the accept loop, graph registry, worker pool, sticky
//!   panic degradation, per-connection socket timeouts (a stalled reader
//!   cannot wedge a worker), and manifest-driven crash-safe resume via
//!   the per-graph checkpoint directories.
//! - [`supervisor`] — the self-healing layer: per-worker health slots
//!   (healthy → poisoned → recycled → permanently degraded), cooldown
//!   recycling with exponential backoff, and a heartbeat watchdog that
//!   cancels stalled jobs and retires wedged workers.
//! - [`lock`] — poison-recovering mutex acquisition, so one panicking
//!   handler costs one job rather than poisoning the daemon's shared
//!   state forever; every acquisition feeds racecheck's lock-order
//!   graph for lockdep-style deadlock detection.
//! - [`proto`] — the pure-logic cores of the three riskiest protocols
//!   (slot respawn, queue drain, poison recovery), extracted so
//!   `crates/modelcheck` can exhaustively explore their interleavings.
//!
//! The server process itself lives in `src/bin/sssp-serve.rs` at the
//! workspace root; this crate holds everything testable in-process.

pub mod lock;
pub mod proto;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod supervisor;

pub use protocol::{Request, Response, ServerStats, SsspRequest};
pub use queue::AdmissionQueue;
pub use server::{ServerConfig, ServerHandle};
pub use supervisor::{HealthCounts, PoisonVerdict, SlotHealth, Supervisor, SupervisorConfig};
