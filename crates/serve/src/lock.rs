//! Poison-recovering, deadlock-instrumented mutex acquisition for the
//! serve layer.
//!
//! The daemon's shared state — admission queue, gauges, graph registry,
//! supervisor slots — is all monotonic counters, flags, and maps that
//! stay internally consistent at every instant a lock is released. A
//! panic while holding one of those locks therefore must not take down
//! every later request with a `PoisonError` (the std default): the data
//! is fine, only the flag is set. [`recover`] clears the poison flag
//! (the policy lives in [`crate::proto::recover`], where the model
//! checker races it against concurrent poisoners) and hands the guard
//! out, so one crashed handler costs one job, never the daemon.
//!
//! Every acquisition is also reported to `racecheck`'s lock-order
//! graph: [`recover`] is `#[track_caller]`, so the recorded acquisition
//! site is the *caller's* `file:line`, and the [`Guard`] wrapper
//! reports the release when it drops. Under a racecheck session (the
//! schedule explorer, the chaos tests) this feeds lockdep-style cycle
//! detection — an AB-BA pair is reported with both witness sites even
//! if the deadlock never manifests. Without a session the hooks are one
//! relaxed atomic load.
//!
//! For tests, the helper consumes the one-shot
//! [`taskpool::fault::arm_lock_poison`] hook: the next acquisition
//! panics *while holding the guard*, poisoning the mutex for real, and
//! the regression test asserts the following acquisitions recover.

use std::ops::{Deref, DerefMut};
// lint:allow(hot-path-lock): poison-recovery helper for the coarse serve-layer locks
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::proto::recover::acquire_recovering;

/// A recovered mutex guard: derefs to the protected state and reports
/// the release to the lock-order graph when dropped.
#[derive(Debug)]
pub struct Guard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    name: &'static str,
    addr: usize,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop/wait")
    }
}

impl<T> DerefMut for Guard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop/wait")
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            racecheck::lock_released(self.addr);
        }
    }
}

/// Acquire `m`, recovering (and clearing) poison left by a panicking
/// earlier holder, and record the acquisition (named `name`, sited at
/// the caller) in the lock-order graph. See the module docs for why
/// recovery is sound here.
// lint:allow(hot-path-lock): poison-recovery helper for the coarse serve-layer locks
#[track_caller]
pub fn recover<'a, T>(name: &'static str, m: &'a Mutex<T>) -> Guard<'a, T> {
    let guard = acquire_recovering(
        || m.lock().map_err(PoisonError::into_inner),
        || m.clear_poison(),
    );
    if taskpool::fault::take_lock_poison() {
        panic!("{}", taskpool::fault::INJECTED_LOCK_POISON_MESSAGE);
    }
    // lint:allow(hot-path-lock): pointer identity only, no acquisition here
    let addr = m as *const Mutex<T> as usize;
    racecheck::lock_acquired(name, addr);
    Guard {
        inner: Some(guard),
        name,
        addr,
    }
}

/// `Condvar::wait` through a [`Guard`], with the same poison recovery
/// as [`recover`] and correct lock-order bookkeeping: the mutex leaves
/// the held set for the duration of the wait (the thread really does
/// not hold it) and re-enters it on wake.
// lint:allow(hot-path-lock): condvar wait on the request-rate control lock
#[track_caller]
pub fn wait_recovered<'a, T>(cv: &Condvar, m: &'a Mutex<T>, mut g: Guard<'a, T>) -> Guard<'a, T> {
    let (name, addr) = (g.name, g.addr);
    let inner = g.inner.take().expect("guard present until drop/wait");
    racecheck::lock_released(addr);
    drop(g);
    let inner = cv.wait(inner).unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    });
    racecheck::lock_acquired(name, addr);
    Guard {
        inner: Some(inner),
        name,
        addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The fault-hook regression test the satellite task asks for: a
    /// panic while holding the guard poisons the mutex, and the next
    /// `recover` call still hands out a working guard over intact state.
    #[test]
    fn recover_clears_poison_and_preserves_state() {
        // lint:allow(hot-path-lock): test fixture
        let m = Mutex::new(41u64);
        *recover("m", &m) += 1;
        taskpool::fault::arm_lock_poison();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let _g = recover("m", &m);
        }));
        assert!(crashed.is_err(), "armed hook must panic while holding the guard");
        assert!(m.is_poisoned(), "the panic really poisoned the mutex");
        // The hook is one-shot, so this acquisition succeeds — and sees
        // the state written before the crash, intact.
        assert_eq!(*recover("m", &m), 42);
        assert!(!m.is_poisoned(), "poison cleared for plain lock() users too");
        assert_eq!(*m.lock().unwrap(), 42);
    }

    /// The acquisition site recorded in the lock-order graph is the
    /// `recover` *call site* (via `#[track_caller]`), and the guard
    /// drop balances the held set.
    #[test]
    fn recover_feeds_the_lock_order_graph_with_caller_sites() {
        // lint:allow(hot-path-lock): test fixture
        let a = Mutex::new(());
        // lint:allow(hot-path-lock): test fixture
        let b = Mutex::new(());
        let session = racecheck::Session::new();
        {
            let _ga = recover("lock-a", &a);
            let _gb = recover("lock-b", &b); // edge a→b
        }
        {
            let _gb = recover("lock-b", &b);
            let _ga = recover("lock-a", &a); // LOCKORDER: deliberate inversion — this test proves the detector sees it
        }
        let deadlocks = session.take_deadlocks();
        assert_eq!(deadlocks.len(), 1, "{deadlocks:?}");
        let cycle = &deadlocks[0];
        assert_eq!(cycle.edges.len(), 2);
        for e in &cycle.edges {
            assert_eq!(e.held.file, file!(), "site must be the caller, not lock.rs internals");
            assert!(e.held.line > 0);
        }
        drop(session);
    }
}
