//! Poison-recovering mutex acquisition for the serve layer.
//!
//! The daemon's shared state — admission queue, gauges, graph registry,
//! supervisor slots — is all monotonic counters, flags, and maps that
//! stay internally consistent at every instant a lock is released. A
//! panic while holding one of those locks therefore must not take down
//! every later request with a `PoisonError` (the std default): the data
//! is fine, only the flag is set. [`recover`] clears the poison flag and
//! hands the guard out, so one crashed handler costs one job, never the
//! daemon.
//!
//! For tests, the helper consumes the one-shot
//! [`taskpool::fault::arm_lock_poison`] hook: the next acquisition
//! panics *while holding the guard*, poisoning the mutex for real, and
//! the regression test asserts the following acquisitions recover.

// lint:allow(hot-path-lock): poison-recovery helper for the coarse serve-layer locks
use std::sync::{Mutex, MutexGuard};

/// Acquire `m`, recovering (and clearing) poison left by a panicking
/// earlier holder. See the module docs for why this is sound here.
// lint:allow(hot-path-lock): poison-recovery helper for the coarse serve-layer locks
pub fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    let guard = m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    });
    if taskpool::fault::take_lock_poison() {
        panic!("{}", taskpool::fault::INJECTED_LOCK_POISON_MESSAGE);
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The fault-hook regression test the satellite task asks for: a
    /// panic while holding the guard poisons the mutex, and the next
    /// `recover` call still hands out a working guard over intact state.
    #[test]
    fn recover_clears_poison_and_preserves_state() {
        // lint:allow(hot-path-lock): test fixture
        let m = Mutex::new(41u64);
        *recover(&m) += 1;
        taskpool::fault::arm_lock_poison();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let _g = recover(&m);
        }));
        assert!(crashed.is_err(), "armed hook must panic while holding the guard");
        assert!(m.is_poisoned(), "the panic really poisoned the mutex");
        // The hook is one-shot, so this acquisition succeeds — and sees
        // the state written before the crash, intact.
        assert_eq!(*recover(&m), 42);
        assert!(!m.is_poisoned(), "poison cleared for plain lock() users too");
        assert_eq!(*m.lock().unwrap(), 42);
    }
}
