//! Wire protocol of the resident SSSP service: a length-prefixed binary
//! framing for programs, and a line-oriented text mode for humans and
//! shell scripts. Both modes carry the same [`Request`]/[`Response`]
//! vocabulary; the server sniffs the first byte of a connection —
//! [`FRAME_SOH`] (0x01, never a printable text command) selects binary.
//!
//! ## Binary framing
//!
//! ```text
//! frame   = SOH (0x01)  opcode u8  len u32le  payload[len]
//! ```
//!
//! Request opcodes live in 0x01..=0x7f, response opcodes in 0x81..=0xff,
//! so a frame's direction is self-evident in a capture. Payload layouts
//! are fixed little-endian (the `graphdata` binary-format family); see
//! [`encode_request`]/[`encode_response`]. `len` is bounded by
//! [`MAX_FRAME_PAYLOAD`] at decode time, so a hostile length prefix
//! cannot drive a blind allocation.
//!
//! ## Text framing
//!
//! One request per line; every reply is one or more lines terminated by
//! a lone `.` line (uniform client framing — read until `.`):
//!
//! ```text
//! PING
//! LOAD GEN grid:40x40
//! SSSP <fingerprint-hex> <source> [delta=F] [deadline_ms=N] [epochs=N]
//!      [impl=NAME] [strategy=NAME[:PARAM]] [full]
//! STATS
//! HEALTH                  (supervision probe: worker health + drain state)
//! HOLD | RELEASE | DRAIN  (only with --debug-commands)
//! QUIT
//! ```
//!
//! ## Error codes
//!
//! Solver errors map 1:1 from [`SsspError`] through [`wire_code`]
//! (codes 10–21, exhaustive by construction — the repo lint
//! `wire-code-coverage` rejects a wildcard arm). Server-level conditions
//! use codes ≥ 30 ([`code`] constants).

use sssp_core::{Implementation, SsspError, SsspStats, SteppingStrategy};

/// First byte of every binary frame; doubles as the mode-sniffing byte.
pub const FRAME_SOH: u8 = 0x01;

/// Upper bound on a frame payload (64 MiB): comfortably holds a full
/// distance dump for a million-vertex graph while bounding what a lying
/// length prefix can allocate.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Terminator line of every text-mode reply.
pub const TEXT_TERMINATOR: &str = ".";

/// Server-level (non-solver) error codes.
pub mod code {
    /// The request referenced a fingerprint no loaded graph carries.
    pub const UNKNOWN_GRAPH: u8 = 30;
    /// The request line/frame could not be parsed.
    pub const BAD_REQUEST: u8 = 31;
    /// The graph registry is at `max_graphs` capacity.
    pub const GRAPH_TABLE_FULL: u8 = 32;
    /// The connection limit was reached.
    pub const TOO_MANY_CONNECTIONS: u8 = 33;
    /// HOLD/RELEASE without `debug_commands` enabled.
    pub const DEBUG_DISABLED: u8 = 34;
    /// Graph generation/loading failed.
    pub const LOAD_FAILED: u8 = 35;
    /// The server is shutting down.
    pub const SHUTTING_DOWN: u8 = 36;
    /// A job failed for a reason with no solver wire code.
    pub const JOB_FAILED: u8 = 37;
}

/// The exhaustive [`SsspError`] → wire-code mapping (codes 10–21). Every
/// solver error a reply can carry has exactly one code; adding a variant
/// to [`SsspError`] is a compile error here, not a silent `_ =>` bucket
/// (and the repo lint checks no wildcard arm sneaks in).
pub fn wire_code(err: &SsspError) -> u8 {
    match err {
        SsspError::NonFiniteWeight { .. } => 10,
        SsspError::NegativeWeight { .. } => 11,
        SsspError::ZeroWeightUnsupported { .. } => 12,
        SsspError::SourceOutOfBounds { .. } => 13,
        SsspError::InvalidDelta { .. } => 14,
        SsspError::IterationLimitExceeded { .. } => 15,
        SsspError::Cancelled { .. } => 16,
        SsspError::DeadlineExceeded { .. } => 17,
        SsspError::InvalidCheckpoint { .. } => 18,
        SsspError::CheckpointIo { .. } => 19,
        SsspError::WorkerPanicked { .. } => 20,
        SsspError::InvalidStrategy { .. } => 21,
    }
}

/// FNV-1a over the little-endian bit patterns of `dist` — the compact
/// bit-exactness certificate replies carry, so "resumed distances are
/// bit-identical to the cold run" is assertable over the wire without
/// shipping the whole vector.
pub fn dist_digest(dist: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in dist {
        for b in d.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// One SSSP query against a loaded graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspRequest {
    /// Fingerprint of the target graph (from a `LOADED` reply).
    pub fingerprint: u64,
    /// Source vertex.
    pub source: usize,
    /// Bucket width Δ; the server default applies when absent.
    pub delta: Option<f64>,
    /// Per-job wall-clock deadline in milliseconds, counted from job
    /// start (queue wait does not consume it).
    pub deadline_ms: Option<u64>,
    /// Epoch budget (watchdog tick cap) — the deterministic way to stop
    /// a job mid-run with a certified partial.
    pub epochs: Option<u64>,
    /// Implementation override; the server default applies when absent.
    pub implementation: Option<Implementation>,
    /// Stepping-strategy override (`classic`, `rho[:N]`,
    /// `delta-star[:K]`); the server default (classic) applies when
    /// absent.
    pub strategy: Option<SteppingStrategy>,
    /// Whether to include the full distance vector in the reply.
    pub full: bool,
}

/// Everything a client can ask.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Generate and register a graph from a CLI-style gen spec.
    LoadGen {
        /// Generator spec, e.g. `grid:40x40` (see [`parse_gen_spec`]).
        spec: String,
    },
    /// Run (or resume) one SSSP job.
    Sssp(SsspRequest),
    /// Server counters snapshot.
    Stats,
    /// Supervision probe: worker health, recycle counters, drain state.
    /// Always available (not debug-gated), so orchestrators can use it
    /// as a readiness/liveness check.
    Health,
    /// Pause worker dispatch (debug only; jobs queue but do not start).
    Hold,
    /// Resume worker dispatch (debug only).
    Release,
    /// Begin a graceful drain (debug only): stop admitting, shed the
    /// queue with live retry hints, cancel in-flight jobs to certified
    /// partials. The same path SIGTERM takes, triggerable from a test.
    Drain,
    /// Close this connection.
    Quit,
}

/// A completed job's reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Graph the job ran against.
    pub fingerprint: u64,
    /// Source vertex.
    pub source: usize,
    /// The Δ actually used.
    pub delta: f64,
    /// Vertices with a finite distance.
    pub reached: u64,
    /// Run counters.
    pub stats: SsspStats,
    /// [`dist_digest`] of the full distance vector.
    pub dist_fnv: u64,
    /// Degradation notice: the job (or its worker, stickily) completed
    /// on the sequential-fused path instead of the requested one.
    pub degraded: Option<String>,
    /// Full distances, when the request asked for them.
    pub full: Option<Vec<f64>>,
}

/// A budget-stopped job's reply: a certified partial result.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Source vertex.
    pub source: usize,
    /// The Δ the interrupted run used.
    pub delta: f64,
    /// Solver wire code of the stop reason (15 epoch limit, 16
    /// cancelled, 17 deadline).
    pub code: u8,
    /// Vertices whose distance is certified final.
    pub settled: u64,
    /// The certificate bound: every distance strictly below this is
    /// final.
    pub settled_below: f64,
    /// Bare file name the checkpoint was persisted under, when the
    /// server runs with a checkpoint directory.
    pub saved: Option<String>,
    /// Human-readable stop reason.
    pub reason: String,
}

/// Counter snapshot; rendered as `name=value` lines in text mode. The
/// pair list is ordered and closed over by the server, so text and
/// binary clients see identical counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// `(name, value)` in server-chosen, stable order.
    pub pairs: Vec<(String, u64)>,
}

impl ServerStats {
    /// Value of counter `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.pairs.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Supervision snapshot carried by a `HEALTH` reply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Coarse verdict: `ok` (all workers healthy), `degraded` (at least
    /// one worker poisoned or permanently degraded), or `draining`.
    pub status: String,
    /// Configured worker count.
    pub workers: u64,
    /// Workers currently healthy.
    pub healthy: u64,
    /// Workers currently poisoned (awaiting a cooldown recycle).
    pub poisoned: u64,
    /// Workers past the recycle budget, pinned to the sequential-fused
    /// fallback forever.
    pub permanently_degraded: u64,
    /// Worker recycles performed since startup.
    pub recycles_total: u64,
    /// Jobs the heartbeat watchdog cancelled since startup.
    pub watchdog_cancelled: u64,
    /// Checkpoint/manifest files moved to `quarantine/` since startup.
    pub quarantined_files: u64,
    /// Whether a graceful drain is in progress.
    pub draining: bool,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// A graph is registered (idempotent for an already-loaded graph).
    Loaded {
        /// Registry key for subsequent `SSSP` requests.
        fingerprint: u64,
        /// Vertex count.
        vertices: u64,
        /// Directed edge count.
        edges: u64,
    },
    /// Completed job.
    Summary(Summary),
    /// Budget-stopped job with a certified partial result.
    Partial(Partial),
    /// Admission control shed the job; retry after the hinted backoff.
    Overloaded {
        /// Server-computed backoff hint from observed service time.
        retry_after_ms: u64,
    },
    /// Counter snapshot.
    Stats(ServerStats),
    /// Supervision snapshot.
    Health(HealthReport),
    /// Typed failure (solver codes 10–20 via [`wire_code`], server codes
    /// ≥ 30 via [`code`]).
    Error {
        /// Error code.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledgement for HOLD/RELEASE/QUIT.
    Done,
}

// ---------------------------------------------------------------------------
// Gen-spec parsing (mirrors the CLI's `--gen` grammar)
// ---------------------------------------------------------------------------

/// Parse a CLI-style generator spec (`grid:WxH`, `er:N,M`,
/// `rmat:SCALE,EDGEFACTOR`, `ba:N,M`, `path:N`, `cycle:N`) into an edge
/// list, with the same fixed seeds as the `sssp` CLI so the two front
/// ends agree on what e.g. `er:500,2000` means.
pub fn parse_gen_spec(spec: &str) -> Result<graphdata::EdgeList, String> {
    use graphdata::gen;
    let (kind, params) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad gen spec '{spec}'"))?;
    let nums = |sep: char| -> Result<Vec<usize>, String> {
        params
            .split(sep)
            .map(|t| t.parse().map_err(|_| format!("bad number in '{spec}'")))
            .collect()
    };
    match kind {
        "grid" => {
            let d = nums('x')?;
            if d.len() != 2 {
                return Err("grid needs WxH".into());
            }
            Ok(gen::grid2d(d[0], d[1]))
        }
        "er" => {
            let d = nums(',')?;
            if d.len() != 2 {
                return Err("er needs N,M".into());
            }
            Ok(gen::gnm(d[0], d[1], 42))
        }
        "rmat" => {
            let d = nums(',')?;
            if d.len() != 2 {
                return Err("rmat needs SCALE,EDGEFACTOR".into());
            }
            Ok(gen::rmat(gen::RmatParams::graph500(d[0] as u32, d[1]), 42))
        }
        "ba" => {
            let d = nums(',')?;
            if d.len() != 2 {
                return Err("ba needs N,M".into());
            }
            Ok(gen::barabasi_albert(d[0], d[1], 42))
        }
        "path" => Ok(gen::path(nums(',')?[0])),
        "cycle" => Ok(gen::cycle(nums(',')?[0])),
        other => Err(format!("unknown generator '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Text mode
// ---------------------------------------------------------------------------

/// Parse one text-mode request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty request")?;
    match verb {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "HEALTH" => Ok(Request::Health),
        "HOLD" => Ok(Request::Hold),
        "RELEASE" => Ok(Request::Release),
        "DRAIN" => Ok(Request::Drain),
        "QUIT" => Ok(Request::Quit),
        "LOAD" => {
            let kind = words.next().ok_or("LOAD needs GEN <spec>")?;
            if kind != "GEN" {
                return Err(format!("unknown LOAD kind '{kind}' (only GEN is supported)"));
            }
            let spec = words.next().ok_or("LOAD GEN needs a spec")?.to_string();
            if words.next().is_some() {
                return Err("trailing words after the gen spec".into());
            }
            Ok(Request::LoadGen { spec })
        }
        "SSSP" => {
            let fp = words.next().ok_or("SSSP needs <fingerprint-hex> <source>")?;
            let fingerprint = u64::from_str_radix(fp.trim_start_matches("0x"), 16)
                .map_err(|_| format!("bad fingerprint '{fp}' (expected hex)"))?;
            let src = words.next().ok_or("SSSP needs a source vertex")?;
            let source: usize = src.parse().map_err(|_| format!("bad source '{src}'"))?;
            let mut req = SsspRequest {
                fingerprint,
                source,
                delta: None,
                deadline_ms: None,
                epochs: None,
                implementation: None,
                strategy: None,
                full: false,
            };
            for opt in words {
                if opt == "full" {
                    req.full = true;
                } else if let Some(v) = opt.strip_prefix("delta=") {
                    req.delta =
                        Some(v.parse().map_err(|_| format!("bad delta '{v}'"))?);
                } else if let Some(v) = opt.strip_prefix("deadline_ms=") {
                    req.deadline_ms =
                        Some(v.parse().map_err(|_| format!("bad deadline_ms '{v}'"))?);
                } else if let Some(v) = opt.strip_prefix("epochs=") {
                    req.epochs =
                        Some(v.parse().map_err(|_| format!("bad epochs '{v}'"))?);
                } else if let Some(v) = opt.strip_prefix("impl=") {
                    req.implementation = Some(
                        Implementation::parse(v)
                            .ok_or_else(|| format!("unknown implementation '{v}'"))?,
                    );
                } else if let Some(v) = opt.strip_prefix("strategy=") {
                    req.strategy = Some(SteppingStrategy::parse(v)?);
                } else {
                    return Err(format!("unknown SSSP option '{opt}'"));
                }
            }
            Ok(Request::Sssp(req))
        }
        other => Err(format!("unknown request '{other}'")),
    }
}

/// Render a response as text-mode lines (without the `.` terminator the
/// server appends). The summary/status line always comes **last**, after
/// any `DEGRADED` / `D <bits>` detail lines, so a streaming client can
/// treat the line before `.` as the verdict.
pub fn render_response(resp: &Response) -> Vec<String> {
    match resp {
        Response::Pong => vec!["PONG".into()],
        Response::Done => vec!["DONE".into()],
        Response::Loaded { fingerprint, vertices, edges } => vec![format!(
            "LOADED fingerprint={fingerprint:016x} vertices={vertices} edges={edges}"
        )],
        Response::Overloaded { retry_after_ms } => {
            vec![format!("OVERLOADED retry_after_ms={retry_after_ms}")]
        }
        Response::Error { code, message } => vec![format!("ERROR code={code} {message}")],
        Response::Stats(stats) => stats
            .pairs
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect(),
        Response::Health(h) => vec![format!(
            "HEALTH status={} workers={} healthy={} poisoned={} permanently_degraded={} \
             recycles_total={} watchdog_cancelled={} quarantined_files={} draining={}",
            h.status,
            h.workers,
            h.healthy,
            h.poisoned,
            h.permanently_degraded,
            h.recycles_total,
            h.watchdog_cancelled,
            h.quarantined_files,
            h.draining
        )],
        Response::Summary(s) => {
            let mut lines = Vec::new();
            if let Some(reason) = &s.degraded {
                lines.push(format!("DEGRADED {reason}"));
            }
            if let Some(dist) = &s.full {
                for d in dist {
                    lines.push(format!("D {:016x}", d.to_bits()));
                }
            }
            lines.push(format!(
                "OK fingerprint={:016x} source={} delta={} reached={} buckets={} \
                 light_phases={} heavy_phases={} relaxations={} improvements={} dist_fnv={:016x}",
                s.fingerprint,
                s.source,
                s.delta,
                s.reached,
                s.stats.buckets_processed,
                s.stats.light_phases,
                s.stats.heavy_phases,
                s.stats.relaxations,
                s.stats.improvements,
                s.dist_fnv
            ));
            lines
        }
        Response::Partial(p) => vec![format!(
            "PARTIAL source={} delta={} code={} settled={} settled_below={} saved={} reason={}",
            p.source,
            p.delta,
            p.code,
            p.settled,
            p.settled_below,
            p.saved.as_deref().unwrap_or("none"),
            p.reason
        )],
    }
}

// ---------------------------------------------------------------------------
// Binary mode
// ---------------------------------------------------------------------------

/// Binary opcodes (requests 0x01..=0x7f, responses 0x81..=0xff).
pub mod opcode {
    /// [`super::Request::Ping`]
    pub const PING: u8 = 0x02;
    /// [`super::Request::LoadGen`]
    pub const LOAD_GEN: u8 = 0x03;
    /// [`super::Request::Sssp`]
    pub const SSSP: u8 = 0x04;
    /// [`super::Request::Stats`]
    pub const STATS: u8 = 0x05;
    /// [`super::Request::Hold`]
    pub const HOLD: u8 = 0x06;
    /// [`super::Request::Release`]
    pub const RELEASE: u8 = 0x07;
    /// [`super::Request::Quit`]
    pub const QUIT: u8 = 0x08;
    /// [`super::Request::Health`]
    pub const HEALTH: u8 = 0x09;
    /// [`super::Request::Drain`]
    pub const DRAIN: u8 = 0x0a;
    /// [`super::Response::Pong`]
    pub const PONG: u8 = 0x82;
    /// [`super::Response::Loaded`]
    pub const LOADED: u8 = 0x83;
    /// [`super::Response::Summary`]
    pub const SUMMARY: u8 = 0x84;
    /// [`super::Response::Partial`]
    pub const PARTIAL: u8 = 0x85;
    /// [`super::Response::Overloaded`]
    pub const OVERLOADED: u8 = 0x86;
    /// [`super::Response::Stats`]
    pub const STATS_REPLY: u8 = 0x87;
    /// [`super::Response::Error`]
    pub const ERROR: u8 = 0x88;
    /// [`super::Response::Done`]
    pub const DONE: u8 = 0x89;
    /// [`super::Response::Health`]
    pub const HEALTH_REPLY: u8 = 0x8a;
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Little-endian payload reader with explicit bounds errors.
struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, at: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("payload truncated reading {what}"))?;
        let out = &self.data[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.bytes(8, what)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = usize::try_from(self.u64(what)?)
            .map_err(|_| format!("{what} length overflows usize"))?;
        if len > self.data.len() {
            return Err(format!("{what} claims {len} bytes, payload is shorter"));
        }
        String::from_utf8(self.bytes(len, what)?.to_vec())
            .map_err(|_| format!("{what} is not UTF-8"))
    }

    fn finish(&self, what: &str) -> Result<(), String> {
        if self.at != self.data.len() {
            return Err(format!(
                "{} trailing bytes after the {what} payload",
                self.data.len() - self.at
            ));
        }
        Ok(())
    }
}

/// Encode a request as `(opcode, payload)`.
pub fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut buf = Vec::new();
    match req {
        Request::Ping => (opcode::PING, buf),
        Request::Stats => (opcode::STATS, buf),
        Request::Health => (opcode::HEALTH, buf),
        Request::Hold => (opcode::HOLD, buf),
        Request::Release => (opcode::RELEASE, buf),
        Request::Drain => (opcode::DRAIN, buf),
        Request::Quit => (opcode::QUIT, buf),
        Request::LoadGen { spec } => {
            push_str(&mut buf, spec);
            (opcode::LOAD_GEN, buf)
        }
        Request::Sssp(r) => {
            push_u64(&mut buf, r.fingerprint);
            push_u64(&mut buf, r.source as u64);
            let mut flags = 0u8;
            if r.delta.is_some() {
                flags |= 1;
            }
            if r.deadline_ms.is_some() {
                flags |= 2;
            }
            if r.epochs.is_some() {
                flags |= 4;
            }
            if r.implementation.is_some() {
                flags |= 8;
            }
            if r.full {
                flags |= 16;
            }
            if r.strategy.is_some() {
                flags |= 32;
            }
            buf.push(flags);
            if let Some(d) = r.delta {
                push_f64(&mut buf, d);
            }
            if let Some(ms) = r.deadline_ms {
                push_u64(&mut buf, ms);
            }
            if let Some(e) = r.epochs {
                push_u64(&mut buf, e);
            }
            if let Some(imp) = r.implementation {
                push_str(&mut buf, imp.name());
            }
            if let Some(strategy) = r.strategy {
                push_str(&mut buf, &strategy.to_string());
            }
            (opcode::SSSP, buf)
        }
    }
}

/// Decode a request from `(opcode, payload)`.
pub fn decode_request(op: u8, payload: &[u8]) -> Result<Request, String> {
    let mut r = Reader::new(payload);
    let req = match op {
        opcode::PING => Request::Ping,
        opcode::STATS => Request::Stats,
        opcode::HEALTH => Request::Health,
        opcode::HOLD => Request::Hold,
        opcode::RELEASE => Request::Release,
        opcode::DRAIN => Request::Drain,
        opcode::QUIT => Request::Quit,
        opcode::LOAD_GEN => Request::LoadGen { spec: r.string("gen spec")? },
        opcode::SSSP => {
            let fingerprint = r.u64("fingerprint")?;
            let source = usize::try_from(r.u64("source")?)
                .map_err(|_| "source overflows usize".to_string())?;
            let flags = r.u8("flags")?;
            let delta = (flags & 1 != 0).then(|| r.f64("delta")).transpose()?;
            let deadline_ms = (flags & 2 != 0).then(|| r.u64("deadline_ms")).transpose()?;
            let epochs = (flags & 4 != 0).then(|| r.u64("epochs")).transpose()?;
            let implementation = if flags & 8 != 0 {
                let name = r.string("implementation")?;
                Some(
                    Implementation::parse(&name)
                        .ok_or_else(|| format!("unknown implementation '{name}'"))?,
                )
            } else {
                None
            };
            let strategy = if flags & 32 != 0 {
                let s = r.string("strategy")?;
                Some(SteppingStrategy::parse(&s)?)
            } else {
                None
            };
            Request::Sssp(SsspRequest {
                fingerprint,
                source,
                delta,
                deadline_ms,
                epochs,
                implementation,
                strategy,
                full: flags & 16 != 0,
            })
        }
        other => return Err(format!("unknown request opcode {other:#04x}")),
    };
    r.finish("request")?;
    Ok(req)
}

/// Encode a response as `(opcode, payload)`.
pub fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut buf = Vec::new();
    match resp {
        Response::Pong => (opcode::PONG, buf),
        Response::Done => (opcode::DONE, buf),
        Response::Loaded { fingerprint, vertices, edges } => {
            push_u64(&mut buf, *fingerprint);
            push_u64(&mut buf, *vertices);
            push_u64(&mut buf, *edges);
            (opcode::LOADED, buf)
        }
        Response::Overloaded { retry_after_ms } => {
            push_u64(&mut buf, *retry_after_ms);
            (opcode::OVERLOADED, buf)
        }
        Response::Error { code, message } => {
            buf.push(*code);
            push_str(&mut buf, message);
            (opcode::ERROR, buf)
        }
        Response::Stats(stats) => {
            push_u64(&mut buf, stats.pairs.len() as u64);
            for (name, value) in &stats.pairs {
                push_str(&mut buf, name);
                push_u64(&mut buf, *value);
            }
            (opcode::STATS_REPLY, buf)
        }
        Response::Health(h) => {
            push_str(&mut buf, &h.status);
            for v in [
                h.workers,
                h.healthy,
                h.poisoned,
                h.permanently_degraded,
                h.recycles_total,
                h.watchdog_cancelled,
                h.quarantined_files,
            ] {
                push_u64(&mut buf, v);
            }
            buf.push(u8::from(h.draining));
            (opcode::HEALTH_REPLY, buf)
        }
        Response::Summary(s) => {
            push_u64(&mut buf, s.fingerprint);
            push_u64(&mut buf, s.source as u64);
            push_f64(&mut buf, s.delta);
            push_u64(&mut buf, s.reached);
            for counter in [
                s.stats.buckets_processed as u64,
                s.stats.light_phases as u64,
                s.stats.heavy_phases as u64,
                s.stats.relaxations,
                s.stats.improvements,
            ] {
                push_u64(&mut buf, counter);
            }
            push_u64(&mut buf, s.dist_fnv);
            push_str(&mut buf, s.degraded.as_deref().unwrap_or(""));
            match &s.full {
                Some(dist) => {
                    buf.push(1);
                    push_u64(&mut buf, dist.len() as u64);
                    for d in dist {
                        push_f64(&mut buf, *d);
                    }
                }
                None => buf.push(0),
            }
            (opcode::SUMMARY, buf)
        }
        Response::Partial(p) => {
            push_u64(&mut buf, p.source as u64);
            push_f64(&mut buf, p.delta);
            buf.push(p.code);
            push_u64(&mut buf, p.settled);
            push_f64(&mut buf, p.settled_below);
            push_str(&mut buf, p.saved.as_deref().unwrap_or(""));
            push_str(&mut buf, &p.reason);
            (opcode::PARTIAL, buf)
        }
    }
}

/// Decode a response from `(opcode, payload)`.
pub fn decode_response(op: u8, payload: &[u8]) -> Result<Response, String> {
    let mut r = Reader::new(payload);
    let resp = match op {
        opcode::PONG => Response::Pong,
        opcode::DONE => Response::Done,
        opcode::LOADED => Response::Loaded {
            fingerprint: r.u64("fingerprint")?,
            vertices: r.u64("vertices")?,
            edges: r.u64("edges")?,
        },
        opcode::OVERLOADED => Response::Overloaded { retry_after_ms: r.u64("retry_after_ms")? },
        opcode::ERROR => Response::Error {
            code: r.u8("error code")?,
            message: r.string("error message")?,
        },
        opcode::STATS_REPLY => {
            let count = usize::try_from(r.u64("stat count")?)
                .map_err(|_| "stat count overflows usize".to_string())?;
            // Each pair is at least 16 bytes; a lying count fails here
            // instead of driving a blind allocation.
            if count.checked_mul(16).is_none_or(|need| payload.len() < need) {
                return Err(format!("stat count {count} exceeds the payload"));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let name = r.string("stat name")?;
                let value = r.u64("stat value")?;
                pairs.push((name, value));
            }
            Response::Stats(ServerStats { pairs })
        }
        opcode::HEALTH_REPLY => {
            let status = r.string("health status")?;
            let mut counters = [0u64; 7];
            for c in counters.iter_mut() {
                *c = r.u64("health counter")?;
            }
            let draining = match r.u8("draining flag")? {
                0 => false,
                1 => true,
                other => return Err(format!("draining flag must be 0/1, got {other}")),
            };
            Response::Health(HealthReport {
                status,
                workers: counters[0],
                healthy: counters[1],
                poisoned: counters[2],
                permanently_degraded: counters[3],
                recycles_total: counters[4],
                watchdog_cancelled: counters[5],
                quarantined_files: counters[6],
                draining,
            })
        }
        opcode::SUMMARY => {
            let fingerprint = r.u64("fingerprint")?;
            let source = usize::try_from(r.u64("source")?)
                .map_err(|_| "source overflows usize".to_string())?;
            let delta = r.f64("delta")?;
            let reached = r.u64("reached")?;
            let mut counters = [0u64; 5];
            for c in counters.iter_mut() {
                *c = r.u64("stat counter")?;
            }
            let dist_fnv = r.u64("dist_fnv")?;
            let degraded = r.string("degraded")?;
            let full = match r.u8("full flag")? {
                0 => None,
                1 => {
                    let n = usize::try_from(r.u64("distance count")?)
                        .map_err(|_| "distance count overflows usize".to_string())?;
                    if n.checked_mul(8).is_none_or(|need| payload.len() < need) {
                        return Err(format!("distance count {n} exceeds the payload"));
                    }
                    let mut dist = Vec::with_capacity(n);
                    for _ in 0..n {
                        dist.push(r.f64("distance")?);
                    }
                    Some(dist)
                }
                other => return Err(format!("full flag must be 0/1, got {other}")),
            };
            Response::Summary(Summary {
                fingerprint,
                source,
                delta,
                reached,
                stats: SsspStats {
                    buckets_processed: counters[0] as usize,
                    light_phases: counters[1] as usize,
                    heavy_phases: counters[2] as usize,
                    relaxations: counters[3],
                    improvements: counters[4],
                },
                dist_fnv,
                degraded: (!degraded.is_empty()).then_some(degraded),
                full,
            })
        }
        opcode::PARTIAL => {
            let source = usize::try_from(r.u64("source")?)
                .map_err(|_| "source overflows usize".to_string())?;
            let delta = r.f64("delta")?;
            let code = r.u8("stop code")?;
            let settled = r.u64("settled")?;
            let settled_below = r.f64("settled_below")?;
            let saved = r.string("saved")?;
            let reason = r.string("reason")?;
            Response::Partial(Partial {
                source,
                delta,
                code,
                settled,
                settled_below,
                saved: (!saved.is_empty()).then_some(saved),
                reason,
            })
        }
        other => return Err(format!("unknown response opcode {other:#04x}")),
    };
    r.finish("response")?;
    Ok(resp)
}

/// Write one binary frame.
pub fn write_frame(
    w: &mut impl std::io::Write,
    op: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(6 + payload.len());
    frame.push(FRAME_SOH);
    frame.push(op);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Read one binary frame, returning `(opcode, payload)`. The SOH byte
/// must already be consumed (or verified) by the caller's mode sniffing
/// when `expect_soh` is false.
pub fn read_frame(
    r: &mut impl std::io::Read,
    expect_soh: bool,
) -> std::io::Result<(u8, Vec<u8>)> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    if expect_soh {
        let mut soh = [0u8; 1];
        r.read_exact(&mut soh)?;
        if soh[0] != FRAME_SOH {
            return Err(bad(format!("expected SOH 0x01, got {:#04x}", soh[0])));
        }
    }
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let op = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(bad(format!("frame payload {len} exceeds {MAX_FRAME_PAYLOAD}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((op, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sssp() -> Request {
        Request::Sssp(SsspRequest {
            fingerprint: 0xdead_beef_cafe_f00d,
            source: 42,
            delta: Some(0.5),
            deadline_ms: Some(250),
            epochs: Some(3),
            implementation: Some(Implementation::ParallelImproved),
            strategy: Some(SteppingStrategy::Rho(512)),
            full: true,
        })
    }

    #[test]
    fn requests_round_trip_through_binary_and_text() {
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Health,
            Request::Hold,
            Request::Release,
            Request::Drain,
            Request::Quit,
            Request::LoadGen { spec: "grid:8x8".into() },
            sample_sssp(),
            Request::Sssp(SsspRequest {
                fingerprint: 1,
                source: 0,
                delta: None,
                deadline_ms: None,
                epochs: None,
                implementation: None,
                strategy: None,
                full: false,
            }),
        ];
        for req in &requests {
            let (op, payload) = encode_request(req);
            assert_eq!(&decode_request(op, &payload).unwrap(), req, "binary {req:?}");
        }
        // Text grammar covers the same vocabulary.
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(parse_request("DRAIN").unwrap(), Request::Drain);
        assert_eq!(
            parse_request("LOAD GEN grid:8x8").unwrap(),
            Request::LoadGen { spec: "grid:8x8".into() }
        );
        assert_eq!(
            parse_request(
                "SSSP deadbeefcafef00d 42 delta=0.5 deadline_ms=250 epochs=3 impl=improved \
                 strategy=rho:512 full"
            )
            .unwrap(),
            sample_sssp()
        );
    }

    #[test]
    fn responses_round_trip_through_binary() {
        let responses = [
            Response::Pong,
            Response::Done,
            Response::Loaded { fingerprint: 7, vertices: 64, edges: 224 },
            Response::Overloaded { retry_after_ms: 150 },
            Response::Error { code: code::UNKNOWN_GRAPH, message: "no such graph".into() },
            Response::Stats(ServerStats {
                pairs: vec![("shed".into(), 2), ("completed".into(), 9)],
            }),
            Response::Health(HealthReport {
                status: "degraded".into(),
                workers: 4,
                healthy: 2,
                poisoned: 1,
                permanently_degraded: 1,
                recycles_total: 7,
                watchdog_cancelled: 3,
                quarantined_files: 2,
                draining: true,
            }),
            Response::Summary(Summary {
                fingerprint: 7,
                source: 3,
                delta: 1.0,
                reached: 64,
                stats: SsspStats {
                    buckets_processed: 15,
                    light_phases: 15,
                    heavy_phases: 15,
                    relaxations: 120,
                    improvements: 70,
                },
                dist_fnv: 0xabcd,
                degraded: Some("worker poisoned".into()),
                full: Some(vec![0.0, 1.5, f64::INFINITY]),
            }),
            Response::Partial(Partial {
                source: 3,
                delta: 1.0,
                code: 17,
                settled: 12,
                settled_below: 4.0,
                saved: Some("ckpt-3.bin".into()),
                reason: "deadline exceeded".into(),
            }),
        ];
        for resp in &responses {
            let (op, payload) = encode_response(resp);
            assert_eq!(&decode_response(op, &payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn frames_round_trip_and_bound_hostile_lengths() {
        let (op, payload) = encode_request(&sample_sssp());
        let mut wire = Vec::new();
        write_frame(&mut wire, op, &payload).unwrap();
        assert_eq!(wire[0], FRAME_SOH);
        let (got_op, got_payload) = read_frame(&mut wire.as_slice(), true).unwrap();
        assert_eq!((got_op, &got_payload), (op, &payload));

        // A lying length prefix is rejected before allocation.
        let mut hostile = vec![FRAME_SOH, opcode::PING];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut hostile.as_slice(), true).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payloads_are_clean_errors() {
        for req in [Request::LoadGen { spec: "grid:8x8".into() }, sample_sssp()] {
            let (op, payload) = encode_request(&req);
            for cut in 0..payload.len() {
                assert!(decode_request(op, &payload[..cut]).is_err(), "{req:?} cut {cut}");
            }
        }
        let (op, payload) = encode_response(&Response::Summary(Summary {
            fingerprint: 1,
            source: 0,
            delta: 1.0,
            reached: 3,
            stats: SsspStats::default(),
            dist_fnv: 9,
            degraded: None,
            full: Some(vec![0.0, 1.0, 2.0]),
        }));
        for cut in 0..payload.len() {
            assert!(decode_response(op, &payload[..cut]).is_err(), "summary cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_response(op, &long).is_err());

        let (op, payload) = encode_response(&Response::Health(HealthReport {
            status: "ok".into(),
            workers: 2,
            healthy: 2,
            ..HealthReport::default()
        }));
        for cut in 0..payload.len() {
            assert!(decode_response(op, &payload[..cut]).is_err(), "health cut {cut}");
        }
        // The draining byte is validated, not just truncation-checked.
        let mut bad = payload.clone();
        *bad.last_mut().unwrap() = 2;
        assert!(decode_response(op, &bad).is_err(), "draining flag must be 0/1");
    }

    #[test]
    fn health_renders_as_one_probe_line() {
        let lines = render_response(&Response::Health(HealthReport {
            status: "ok".into(),
            workers: 2,
            healthy: 2,
            ..HealthReport::default()
        }));
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("HEALTH status=ok workers=2 healthy=2 "));
        assert!(lines[0].ends_with("draining=false"));
    }

    #[test]
    fn bad_text_requests_are_descriptive_errors() {
        for (line, needle) in [
            ("", "empty"),
            ("FROB", "unknown request"),
            ("LOAD FILE x", "unknown LOAD kind"),
            ("SSSP zzz 0", "bad fingerprint"),
            ("SSSP 1f", "source"),
            ("SSSP 1f 0 impl=frobnicate", "unknown implementation"),
            ("SSSP 1f 0 strategy=bogus", "unknown strategy"),
            ("SSSP 1f 0 strategy=rho:0", "rho must be at least 1"),
            ("SSSP 1f 0 frob=1", "unknown SSSP option"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn wire_codes_are_distinct() {
        let errs = [
            SsspError::InvalidDelta { delta: 0.0 },
            SsspError::SourceOutOfBounds { source: 9, num_vertices: 4 },
            SsspError::InvalidCheckpoint { reason: "x".into() },
            SsspError::WorkerPanicked { message: "x".into() },
            SsspError::InvalidStrategy { reason: "x".into() },
        ];
        let codes: Vec<u8> = errs.iter().map(wire_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
        assert!(codes.iter().all(|&c| (10..30).contains(&c)), "solver codes stay below 30");
    }

    #[test]
    fn dist_digest_is_bit_sensitive() {
        let a = dist_digest(&[0.0, 1.0, f64::INFINITY]);
        let b = dist_digest(&[0.0, 1.0 + f64::EPSILON, f64::INFINITY]);
        assert_ne!(a, b);
        assert_eq!(a, dist_digest(&[0.0, 1.0, f64::INFINITY]));
    }

    #[test]
    fn gen_spec_matches_cli_grammar() {
        let g = parse_gen_spec("grid:4x4").unwrap();
        let csr = graphdata::CsrGraph::from_edge_list(&g).unwrap();
        assert_eq!(csr.num_vertices(), 16);
        assert!(parse_gen_spec("grid:4").is_err());
        assert!(parse_gen_spec("nope:1,2").is_err());
        assert!(parse_gen_spec("plain").is_err());
        assert!(parse_gen_spec("er:50,200").is_ok());
        assert!(parse_gen_spec("path:9").is_ok());
    }
}
