//! Bounded admission queue with a **shed-don't-queue** overload policy.
//!
//! The queue is the server's only buffer between connection handlers and
//! engine workers, and it is deliberately small: once `capacity` jobs
//! are waiting, further submissions are *refused immediately* with a
//! typed backoff hint instead of being parked. An unbounded queue turns
//! overload into unbounded latency for everyone; a bounded queue with
//! early shedding keeps latency flat for admitted work and pushes the
//! wait out to clients who can see it and act on it.
//!
//! Every admit/shed/dispatch decision is made by the pure
//! [`QueueCore`](crate::proto::drain::QueueCore); this wrapper owns the
//! job storage, the mutex, and the condvar. The split is what lets
//! `crates/modelcheck` prove the hint invariants below over every
//! interleaving instead of sampling them.
//!
//! The backoff hint is deterministic given the queue state:
//!
//! ```text
//! retry_after_ms = max(1, avg_service_ms × (waiting + running + 1))
//! ```
//!
//! i.e. "the backlog ahead of you, plus your own job, at the observed
//! per-job service time". Before any job has completed, a fixed
//! [`DEFAULT_SERVICE_MS`] estimate applies, which keeps the first shed
//! wave reproducible in tests.
//!
//! `hold`/`release` freeze worker dispatch (submissions still admit and
//! queue) — a debug-only lever the chaos tests use to fill the queue
//! deterministically without racing the workers.
//!
//! Two ways the queue stops admitting, with different client-facing
//! meanings:
//!
//! * [`drain`](AdmissionQueue::drain) — graceful shutdown in progress.
//!   Submissions are shed with the **live** `retry_after_ms` hint (the
//!   service is coming back; retry against the restarted instance), and
//!   the waiting jobs are handed back to the caller to answer.
//! * [`shutdown`](AdmissionQueue::shutdown) — the service is gone.
//!   Submissions are shed with the sentinel hint `0` ("do not retry
//!   here") and poppers wake with `None`.

use std::collections::VecDeque;
// lint:allow(hot-path-lock): admission control is request-rate, not per-edge
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::lock;
use crate::proto::drain::{PopDecision, QueueCore, SubmitDecision};

pub use crate::proto::drain::DEFAULT_SERVICE_MS;

struct State<T> {
    /// The decision core; `core.waiting()` mirrors `jobs.len()`.
    core: QueueCore,
    jobs: VecDeque<T>,
}

impl<T> State<T> {
    fn check_mirror(&self) {
        debug_assert_eq!(
            self.core.waiting(),
            self.jobs.len(),
            "QueueCore.waiting must mirror the job deque"
        );
    }
}

/// Bounded MPMC admission queue (see module docs).
pub struct AdmissionQueue<T> {
    // Admission is request-rate work, not per-edge work; a Mutex+Condvar
    // pair is the simplest correct MPMC gate here.
    // lint:allow(hot-path-lock): admission control runs per request, not per edge
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            // lint:allow(hot-path-lock): one lock acquisition per request lifecycle event
            state: Mutex::new(State {
                core: QueueCore::new(capacity),
                jobs: VecDeque::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Submit a job. Admitted jobs queue in FIFO order; a submission
    /// past the bound — or during a [`drain`](Self::drain) — is shed
    /// with the live `retry_after_ms` hint, and a submission after
    /// [`shutdown`](Self::shutdown) is shed with hint 0.
    pub fn submit(&self, job: T) -> Result<(), u64> {
        let mut s = lock::recover("queue.state", &self.state);
        match s.core.on_submit() {
            SubmitDecision::Refuse => Err(0),
            SubmitDecision::Shed { retry_after_ms } => Err(retry_after_ms),
            SubmitDecision::Admit => {
                s.jobs.push_back(job);
                s.check_mirror();
                drop(s);
                self.ready.notify_one();
                Ok(())
            }
        }
    }

    /// The backoff hint the next shed submission would carry, computed
    /// from the same observed-service-time formula the shed path uses —
    /// without shedding anything. Always at least 1 ms, so a hint can
    /// never collide with the shutdown sentinel `Err(0)`.
    pub fn retry_hint(&self) -> u64 {
        lock::recover("queue.state", &self.state).core.backoff_hint()
    }

    /// Block until a job is dispatchable (or the queue shuts down —
    /// `None`). The popped job counts as running until
    /// [`finish`](Self::finish).
    pub fn pop(&self) -> Option<T> {
        let mut s = lock::recover("queue.state", &self.state);
        loop {
            match s.core.try_dispatch() {
                PopDecision::Closed => return None,
                PopDecision::Dispatch => {
                    let job = s.jobs.pop_front().expect("core dispatched from empty deque");
                    s.check_mirror();
                    return Some(job);
                }
                PopDecision::Wait => {
                    s = lock::wait_recovered(&self.ready, &self.state, s);
                }
            }
        }
    }

    /// Record a popped job's completion and its service time (feeds the
    /// shed hint's running average).
    pub fn finish(&self, service: Duration) {
        lock::recover("queue.state", &self.state)
            .core
            .on_finish(service.as_millis() as u64);
    }

    /// Freeze dispatch: `pop` blocks even with queued jobs.
    pub fn hold(&self) {
        lock::recover("queue.state", &self.state).core.set_held(true);
    }

    /// Unfreeze dispatch.
    pub fn release(&self) {
        lock::recover("queue.state", &self.state).core.set_held(false);
        self.ready.notify_all();
    }

    /// Begin a graceful drain: stop admitting (submissions shed with the
    /// live hint — see module docs) and hand back every waiting job so
    /// the caller can answer its client. Running jobs are untouched.
    pub fn drain(&self) -> Vec<T> {
        let mut s = lock::recover("queue.state", &self.state);
        let n = s.core.begin_drain();
        let shed: Vec<T> = s.jobs.drain(..).collect();
        debug_assert_eq!(n, shed.len(), "core drained a different count than the deque held");
        s.check_mirror();
        drop(s);
        self.ready.notify_all();
        shed
    }

    /// Whether a drain is in progress.
    pub fn is_draining(&self) -> bool {
        lock::recover("queue.state", &self.state).core.is_draining()
    }

    /// Jobs popped but not yet finished (the drain loop polls this down
    /// to zero).
    pub fn running(&self) -> usize {
        lock::recover("queue.state", &self.state).core.running()
    }

    /// Wake all poppers with `None`; subsequent submissions are shed.
    pub fn shutdown(&self) {
        lock::recover("queue.state", &self.state).core.shutdown();
        self.ready.notify_all();
    }

    /// `(waiting, running, shed, admitted)` counters for STATS.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        lock::recover("queue.state", &self.state).core.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sheds_past_capacity_with_a_deterministic_hint() {
        let q = AdmissionQueue::new(2);
        q.hold();
        assert!(q.submit(1).is_ok());
        assert!(q.submit(2).is_ok());
        // Queue full, nothing running, no observations yet:
        // 50ms × (2 waiting + 0 running + 1) = 150, for every shed.
        assert_eq!(q.submit(3), Err(150));
        assert_eq!(q.submit(4), Err(150));
        let (waiting, running, shed, admitted) = q.counters();
        assert_eq!((waiting, running, shed, admitted), (2, 0, 2, 2));
    }

    #[test]
    fn hint_tracks_observed_service_time() {
        let q = AdmissionQueue::new(1);
        assert!(q.submit(1).is_ok());
        assert_eq!(q.pop(), Some(1));
        q.finish(Duration::from_millis(200));
        assert!(q.submit(2).is_ok());
        // avg 200ms × (1 waiting + 0 running + 1) = 400.
        assert_eq!(q.submit(3), Err(400));
    }

    #[test]
    fn retry_hint_matches_the_shed_formula_and_is_never_zero() {
        let q = AdmissionQueue::new(1);
        // Fresh queue: 50ms default × (0 waiting + 0 running + 1).
        assert_eq!(q.retry_hint(), DEFAULT_SERVICE_MS);
        assert!(q.submit(1).is_ok());
        // The advisory hint and the actual shed hint agree.
        assert_eq!(q.submit(2).unwrap_err(), DEFAULT_SERVICE_MS * 2);
        assert_eq!(q.retry_hint(), DEFAULT_SERVICE_MS * 2);
        // Even a zero observed service time keeps the hint at ≥ 1, so it
        // can never collide with the shutdown sentinel 0.
        assert_eq!(q.pop(), Some(1));
        q.finish(Duration::ZERO);
        assert_eq!(q.retry_hint(), 1);
    }

    #[test]
    fn hold_freezes_dispatch_but_not_admission() {
        let q = Arc::new(AdmissionQueue::new(4));
        q.hold();
        assert!(q.submit(7).is_ok());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // The popper must still be blocked: the job is queued but held.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!popper.is_finished(), "pop returned while held");
        q.release();
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn shutdown_unblocks_poppers_and_sheds_submissions() {
        let q = Arc::new(AdmissionQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.shutdown();
        assert_eq!(popper.join().unwrap(), None::<i32>);
        assert_eq!(q.submit(1), Err(0));
    }

    /// The satellite fix: during a drain the service is *coming back*,
    /// so shed submissions must carry the live retry hint, never the
    /// shutdown sentinel 0.
    #[test]
    fn drain_sheds_waiting_jobs_and_submissions_get_a_live_hint() {
        let q = AdmissionQueue::new(4);
        q.hold();
        assert!(q.submit(1).is_ok());
        assert!(q.submit(2).is_ok());
        let shed = q.drain();
        assert_eq!(shed, vec![1, 2], "waiting jobs come back in FIFO order");
        assert!(q.is_draining());
        // Queue now empty, nothing running: live hint = 50 × (0+0+1).
        let hint = q.submit(3).unwrap_err();
        assert_eq!(hint, DEFAULT_SERVICE_MS);
        assert!(hint > 0, "drain must never shed with the shutdown sentinel");
        let (waiting, _, shed_count, admitted) = q.counters();
        assert_eq!((waiting, shed_count, admitted), (0, 3, 2));
        // Full shutdown still sheds with the sentinel.
        q.shutdown();
        assert_eq!(q.submit(4), Err(0));
    }

    #[test]
    fn drain_leaves_running_jobs_untouched() {
        let q = AdmissionQueue::new(4);
        assert!(q.submit(1).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert!(q.drain().is_empty());
        assert_eq!(q.running(), 1, "in-flight work survives the drain");
        q.finish(Duration::from_millis(1));
        assert_eq!(q.running(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.submit(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
            q.finish(Duration::from_millis(1));
        }
        let (waiting, running, shed, admitted) = q.counters();
        assert_eq!((waiting, running, shed, admitted), (0, 0, 0, 5));
    }
}
