//! Task-parallel variants of the hottest GraphBLAS kernels.
//!
//! The paper's Sec. VI-C observes that its OpenMP-task scheme is limited by
//! operations that remain single tasks (the `A_L`/`A_H` matrix filters take
//! 35–40 % of the runtime) and calls for "parallelizing within the
//! matrix-vector operations and splitting the filtering operations into
//! smaller tasks". This module is that extension: `vxm`, element-wise ops,
//! matrix apply/select run as chunked tasks on a [`taskpool::ThreadPool`].
//!
//! All functions are drop-in parallel counterparts of the sequential
//! operations in [`crate::ops`] with identical semantics (the integration
//! tests check bit-for-bit agreement).

mod ewise;
mod matrix_par;
mod vxm_par;

pub use ewise::{par_ewise_add_vector, par_ewise_mult_vector, par_vector_apply};
pub use matrix_par::{par_matrix_apply_identity, par_select_matrix};
pub use vxm_par::par_vxm;
