//! Parallel matrix filtering — the kernel the paper identifies as the
//! scaling bottleneck (building `A_L`/`A_H` takes 35–40 % of sequential
//! runtime and was a single task per matrix in the paper's scheme).
//!
//! Rows are split into contiguous chunks; each task filters its rows into a
//! private buffer; [`scope_collect`] returns the buffers already in row
//! order (no completion lock, no sort), and they concatenate into a CSR
//! result.

use taskpool::{scope_collect, split_evenly, ThreadPool};

use crate::matrix::Matrix;
use crate::types::Scalar;

struct RowChunk<T> {
    first_row: usize,
    /// Entries per row within the chunk.
    row_counts: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

/// Stitch row-ordered chunks (as returned by [`scope_collect`]) into CSR.
fn assemble<T: Scalar>(nrows: usize, ncols: usize, chunks: Vec<RowChunk<T>>) -> Matrix<T> {
    let nnz: usize = chunks.iter().map(|c| c.col_idx.len()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for chunk in chunks {
        debug_assert_eq!(chunk.first_row, row_ptr.len() - 1);
        for count in chunk.row_counts {
            row_ptr.push(row_ptr.last().unwrap() + count);
        }
        col_idx.extend_from_slice(&chunk.col_idx);
        values.extend_from_slice(&chunk.values);
    }
    debug_assert_eq!(row_ptr.len(), nrows + 1);
    Matrix::from_csr_unchecked(nrows, ncols, row_ptr, col_idx, values)
}

/// Parallel single-pass filter: `select(A, pred)` with rows chunked into
/// `grain`-row tasks (0 = one chunk per thread). The fused/parallel
/// delta-stepping builds `A_L` and `A_H` with this.
pub fn par_select_matrix<T, P>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    grain: usize,
    pred: P,
) -> Matrix<T>
where
    T: Scalar,
    P: Fn(usize, usize, T) -> bool + Send + Sync,
{
    let nrows = a.nrows();
    if nrows == 0 {
        return Matrix::new(0, a.ncols());
    }
    let pieces = if grain == 0 {
        pool.num_threads()
    } else {
        nrows.div_ceil(grain)
    };
    let ranges = split_evenly(0..nrows, pieces);
    let chunks = scope_collect(pool, ranges, |_, range| {
        let mut rc = RowChunk {
            first_row: range.start,
            row_counts: Vec::with_capacity(range.len()),
            col_idx: Vec::new(),
            values: Vec::new(),
        };
        for r in range {
            let (cols, vals) = a.row(r);
            let before = rc.col_idx.len();
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if pred(r, c, v) {
                    rc.col_idx.push(c);
                    rc.values.push(v);
                }
            }
            rc.row_counts.push(rc.col_idx.len() - before);
        }
        rc
    });
    assemble(nrows, a.ncols(), chunks)
}

/// Parallel value transform with unchanged pattern: `B[i,j] = f(A[i,j])`.
pub fn par_matrix_apply_identity<T, U, F>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    grain: usize,
    f: F,
) -> Matrix<U>
where
    T: Scalar,
    U: Scalar,
    F: Fn(T) -> U + Send + Sync,
{
    let nrows = a.nrows();
    if nrows == 0 {
        return Matrix::new(0, a.ncols());
    }
    let pieces = if grain == 0 {
        pool.num_threads()
    } else {
        nrows.div_ceil(grain)
    };
    let ranges = split_evenly(0..nrows, pieces);
    let chunks = scope_collect(pool, ranges, |_, range| {
        let mut rc = RowChunk {
            first_row: range.start,
            row_counts: Vec::with_capacity(range.len()),
            col_idx: Vec::new(),
            values: Vec::new(),
        };
        for r in range {
            let (cols, vals) = a.row(r);
            rc.row_counts.push(cols.len());
            rc.col_idx.extend_from_slice(cols);
            rc.values.extend(vals.iter().map(|&v| f(v)));
        }
        rc
    });
    assemble(nrows, a.ncols(), chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::select_matrix;
    use crate::Descriptor;

    fn weighted(n: usize) -> Matrix<f64> {
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push((i, (i + 1) % n, (i % 5) as f64 * 0.5));
            triples.push((i, (i * 7 + 3) % n, (i % 3) as f64 + 0.25));
        }
        Matrix::from_triples_dup(n, n, triples, &crate::ops::binary::Min::new()).unwrap()
    }

    #[test]
    fn par_select_matches_sequential() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let a = weighted(500);
        let par = par_select_matrix(&pool, &a, 0, |_, _, w| w <= 1.0);
        let mut seq: Matrix<f64> = Matrix::new(500, 500);
        select_matrix(&mut seq, None, None, |_, _, w| w <= 1.0, &a, Descriptor::new()).unwrap();
        assert_eq!(par, seq);
        par.check_invariants().unwrap();
    }

    #[test]
    fn par_select_fine_grain() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let a = weighted(97);
        let coarse = par_select_matrix(&pool, &a, 0, |_, _, w| w > 1.0);
        let fine = par_select_matrix(&pool, &a, 8, |_, _, w| w > 1.0);
        assert_eq!(coarse, fine);
    }

    #[test]
    fn par_apply_identity_transforms_values() {
        let pool = ThreadPool::with_threads(2).unwrap();
        let a = weighted(100);
        let doubled = par_matrix_apply_identity(&pool, &a, 0, |w| w * 2.0);
        assert_eq!(doubled.nvals(), a.nvals());
        for ((_, _, v1), (_, _, v2)) in a.iter().zip(doubled.iter()) {
            assert_eq!(v2, v1 * 2.0);
        }
    }

    #[test]
    fn par_empty_matrix() {
        let pool = ThreadPool::with_threads(2).unwrap();
        let a: Matrix<f64> = Matrix::new(0, 0);
        let out = par_select_matrix(&pool, &a, 0, |_, _, _| true);
        assert_eq!(out.nvals(), 0);
    }
}
