//! Parallel `vxm`: split the frontier's stored entries into chunks, give
//! each task a private dense accumulator, and merge with the semiring's
//! additive monoid.
//!
//! Per-task partials come back through [`scope_collect`] — no lock on the
//! completion path, and the merge folds them in **chunk order**, so the
//! result is deterministic even for additive monoids where evaluation
//! order shows up in the bits (floating `+`), not just for `min`.

use taskpool::{scope_collect, split_evenly, ThreadPool};

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::semiring::Semiring;
use crate::ops::write::{accum_merge, mask_write_vector, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// Parallel `out<mask> ⊙= u ⊕.⊗ A`; semantics identical to
/// [`crate::ops::vxm()`](crate::ops::vxm()) (no `transpose_a` support — transpose up front).
#[allow(clippy::too_many_arguments)]
pub fn par_vxm<UD, MD, C, S>(
    pool: &ThreadPool,
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    semiring: &S,
    u: &Vector<UD>,
    a: &Matrix<MD>,
    desc: Descriptor,
) -> Info
where
    UD: Scalar,
    MD: Scalar,
    C: Scalar,
    S: Semiring<UD, MD, C> + Sync,
{
    assert!(
        !desc.transpose_a,
        "par_vxm does not support transpose_a; materialize the transpose first"
    );
    check_dims("u size vs nrows", a.nrows(), u.size())?;
    check_dims("out size vs ncols", a.ncols(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }

    let nnz = u.nvals();
    let ncols = a.ncols();
    // Small frontiers are not worth the fork/merge overhead.
    if nnz < 256 || pool.num_threads() == 1 {
        let t = crate::ops::vxm::vxm_pattern(semiring, u, a);
        let z = accum_merge(out, t, accum);
        mask_write_vector(out, z, mask, desc);
        return Ok(());
    }

    let chunks = split_evenly(0..nnz, pool.num_threads());
    let add = semiring.add();
    let partials: Vec<SparseVec<C>> = scope_collect(pool, chunks, |_, chunk| {
        let mul = semiring.mul();
        let add = semiring.add();
        let mut acc: Vec<C> = vec![add.identity(); ncols];
        let mut present = vec![false; ncols];
        let mut touched: Vec<usize> = Vec::new();
        for p in chunk {
            #[cfg(feature = "racecheck")]
            {
                // Chunk-boundary interleaving + the shared frontier read
                // every producer task performs.
                taskpool::sched::yield_point();
                racecheck::plain_read("gblas.vxm.u", &u.values()[p] as *const UD);
            }
            let i = u.indices()[p];
            let uv = u.values()[p];
            let (cols, vals) = a.row(i);
            for (&j, &av) in cols.iter().zip(vals.iter()) {
                let prod = mul.apply(uv, av);
                if present[j] {
                    acc[j] = add.apply(acc[j], prod);
                } else {
                    acc[j] = prod;
                    present[j] = true;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        let mut part = SparseVec::with_capacity(touched.len());
        for j in touched {
            part.push(j, acc[j]);
        }
        part
    });

    // Sequential tree-free merge of the per-task partials with ⊕, in
    // chunk order.
    let mut t = SparseVec {
        indices: Vec::new(),
        values: Vec::new(),
    };
    for part in partials {
        t = crate::ops::write::union_merge(
            &t.indices,
            &t.values,
            &part.indices,
            &part.values,
            |x| x,
            |y| y,
            |x, y| add.apply(x, y),
        );
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::semiring::min_plus_f64;
    use crate::ops::vxm::vxm;

    fn ring(n: usize) -> Matrix<f64> {
        let triples = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        Matrix::from_triples(n, n, triples).unwrap()
    }

    #[test]
    fn par_vxm_matches_sequential_small() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let a = ring(10);
        let u = Vector::from_entries(10, vec![(0, 0.0), (5, 2.0)]).unwrap();
        let mut seq = Vector::new(10);
        vxm(&mut seq, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        let mut par = Vector::new(10);
        par_vxm(&pool, &mut par, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_vxm_matches_sequential_large_dense_frontier() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let n = 2000;
        // Two outgoing edges per vertex so columns collide across chunks.
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push((i, (i + 1) % n, 1.0 + (i % 7) as f64));
            triples.push((i, (i * 13 + 5) % n, 2.0 + (i % 3) as f64));
        }
        let a = Matrix::from_triples_dup(n, n, triples, &crate::ops::binary::Min::new()).unwrap();
        let u = Vector::from_entries(n, (0..n).map(|i| (i, (i % 11) as f64)).collect()).unwrap();
        let mut seq = Vector::new(n);
        vxm(&mut seq, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        let mut par = Vector::new(n);
        par_vxm(&pool, &mut par, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_vxm_with_mask_and_accum() {
        let pool = ThreadPool::with_threads(3).unwrap();
        let n = 600;
        let a = ring(n);
        let u = Vector::from_entries(n, (0..n).map(|i| (i, i as f64)).collect()).unwrap();
        let mask_v =
            Vector::from_entries(n, (0..n).step_by(2).map(|i| (i, true)).collect()).unwrap();
        let mask = mask_v.mask();
        let accum = crate::ops::binary::Min::<f64>::new();

        let mut seq = Vector::from_entries(n, vec![(0, -5.0)]).unwrap();
        vxm(
            &mut seq,
            Some(&mask),
            Some(&accum),
            &min_plus_f64(),
            &u,
            &a,
            Descriptor::replace(),
        )
        .unwrap();
        let mut par = Vector::from_entries(n, vec![(0, -5.0)]).unwrap();
        par_vxm(
            &pool,
            &mut par,
            Some(&mask),
            Some(&accum),
            &min_plus_f64(),
            &u,
            &a,
            Descriptor::replace(),
        )
        .unwrap();
        assert_eq!(seq, par);
    }
}
