//! Parallel element-wise vector operations: the index space is split into
//! contiguous ranges; each task merges its slice of both operands; the
//! per-task results come back **already in range order** through
//! [`scope_collect`] — no completion lock, no sort-by-chunk-key — and
//! concatenate directly (element-wise outputs at an index depend only on
//! that index, so there is no cross-chunk interaction).

use taskpool::{scope_collect, split_evenly, ThreadPool};

use crate::descriptor::Descriptor;
use crate::error::Info;
use crate::mask::VectorMask;
use crate::ops::binary::BinaryOp;
use crate::ops::unary::UnaryOp;
use crate::ops::write::{accum_merge, intersect_merge, mask_write_vector, union_merge, SparseVec};
use crate::types::{CastTo, Scalar};
use crate::vector::Vector;

/// Split `indices` (sorted) into the sub-slices covered by each index range.
fn slice_bounds(indices: &[usize], ranges: &[std::ops::Range<usize>]) -> Vec<(usize, usize)> {
    ranges
        .iter()
        .map(|r| {
            let lo = indices.partition_point(|&i| i < r.start);
            let hi = indices.partition_point(|&i| i < r.end);
            (lo, hi)
        })
        .collect()
}

/// Concatenate per-range partials that are already in ascending index
/// order (the order [`scope_collect`] returns them in).
fn concat_ordered<C: Scalar>(parts: Vec<SparseVec<C>>) -> SparseVec<C> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = SparseVec::with_capacity(total);
    for p in parts {
        out.indices.extend_from_slice(&p.indices);
        out.values.extend_from_slice(&p.values);
    }
    out
}

/// Parallel [`crate::ops::ewise_add_vector`].
#[allow(clippy::too_many_arguments)]
pub fn par_ewise_add_vector<A, B, C, Op>(
    pool: &ThreadPool,
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar + CastTo<C>,
    B: Scalar + CastTo<C>,
    C: Scalar,
    Op: BinaryOp<A, B, C> + Sync + ?Sized,
{
    out.check_same_size(u.size())?;
    out.check_same_size(v.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let ranges = split_evenly(0..u.size(), pool.num_threads());
    if ranges.len() <= 1 || u.nvals() + v.nvals() < 512 {
        let t = union_merge(u.indices(), u.values(), v.indices(), v.values(), |a| a.cast(),
            |b| b.cast(), |a, b| op.apply(a, b));
        let z = accum_merge(out, t, accum);
        mask_write_vector(out, z, mask, desc);
        return Ok(());
    }
    let ub = slice_bounds(u.indices(), &ranges);
    let vb = slice_bounds(v.indices(), &ranges);
    let bounds: Vec<((usize, usize), (usize, usize))> =
        ub.into_iter().zip(vb).collect();
    let parts = scope_collect(pool, bounds, |_, ((ulo, uhi), (vlo, vhi))| {
        union_merge(
            &u.indices()[ulo..uhi],
            &u.values()[ulo..uhi],
            &v.indices()[vlo..vhi],
            &v.values()[vlo..vhi],
            |a| a.cast(),
            |b| b.cast(),
            |a, b| op.apply(a, b),
        )
    });
    let t = concat_ordered(parts);
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// Parallel [`crate::ops::ewise_mult_vector`].
#[allow(clippy::too_many_arguments)]
pub fn par_ewise_mult_vector<A, B, C, Op>(
    pool: &ThreadPool,
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + Sync + ?Sized,
{
    out.check_same_size(u.size())?;
    out.check_same_size(v.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let ranges = split_evenly(0..u.size(), pool.num_threads());
    if ranges.len() <= 1 || u.nvals().min(v.nvals()) < 512 {
        let t = intersect_merge(u.indices(), u.values(), v.indices(), v.values(), |a, b| {
            op.apply(a, b)
        });
        let z = accum_merge(out, t, accum);
        mask_write_vector(out, z, mask, desc);
        return Ok(());
    }
    let ub = slice_bounds(u.indices(), &ranges);
    let vb = slice_bounds(v.indices(), &ranges);
    let bounds: Vec<((usize, usize), (usize, usize))> =
        ub.into_iter().zip(vb).collect();
    let parts = scope_collect(pool, bounds, |_, ((ulo, uhi), (vlo, vhi))| {
        intersect_merge(
            &u.indices()[ulo..uhi],
            &u.values()[ulo..uhi],
            &v.indices()[vlo..vhi],
            &v.values()[vlo..vhi],
            |a, b| op.apply(a, b),
        )
    });
    let t = concat_ordered(parts);
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// Parallel [`crate::ops::vector_apply`].
pub fn par_vector_apply<A, B, Op>(
    pool: &ThreadPool,
    out: &mut Vector<B>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<B, B, B>>,
    op: &Op,
    input: &Vector<A>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    Op: UnaryOp<A, B> + Sync + ?Sized,
{
    out.check_same_size(input.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let nnz = input.nvals();
    if nnz < 512 || pool.num_threads() == 1 {
        return crate::ops::apply::vector_apply(out, mask, accum, op, input, desc);
    }
    let chunks = split_evenly(0..nnz, pool.num_threads());
    let parts = scope_collect(pool, chunks, |_, chunk| {
        let mut part = SparseVec::with_capacity(chunk.len());
        for p in chunk {
            part.push(input.indices()[p], op.apply(input.values()[p]));
        }
        part
    });
    let t = concat_ordered(parts);
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Min, Plus};
    use crate::ops::unary::FnUnary;

    fn big_vectors(n: usize) -> (Vector<f64>, Vector<f64>) {
        let u = Vector::from_entries(
            n,
            (0..n).filter(|i| i % 2 == 0).map(|i| (i, i as f64)).collect(),
        )
        .unwrap();
        let v = Vector::from_entries(
            n,
            (0..n).filter(|i| i % 3 == 0).map(|i| (i, (i * 2) as f64)).collect(),
        )
        .unwrap();
        (u, v)
    }

    #[test]
    fn par_ewise_add_matches_sequential() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let (u, v) = big_vectors(5000);
        let mut seq = Vector::new(5000);
        crate::ops::ewise::ewise_add_vector(
            &mut seq, None, None, &Min::<f64>::new(), &u, &v, Descriptor::new(),
        )
        .unwrap();
        let mut par = Vector::new(5000);
        par_ewise_add_vector(&pool, &mut par, None, None, &Min::<f64>::new(), &u, &v, Descriptor::new())
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_ewise_mult_matches_sequential() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let (u, v) = big_vectors(5000);
        let mut seq = Vector::new(5000);
        crate::ops::ewise::ewise_mult_vector(
            &mut seq, None, None, &Plus::<f64>::new(), &u, &v, Descriptor::new(),
        )
        .unwrap();
        let mut par = Vector::new(5000);
        par_ewise_mult_vector(
            &pool, &mut par, None, None, &Plus::<f64>::new(), &u, &v, Descriptor::new(),
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_apply_matches_sequential() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let (u, _) = big_vectors(5000);
        let op = FnUnary::new(|x: f64| x * 0.5 + 1.0);
        let mut seq = Vector::new(5000);
        crate::ops::apply::vector_apply(&mut seq, None, None, &op, &u, Descriptor::new()).unwrap();
        let mut par = Vector::new(5000);
        par_vector_apply(&pool, &mut par, None, None, &op, &u, Descriptor::new()).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_small_inputs_fall_back() {
        let pool = ThreadPool::with_threads(4).unwrap();
        let u = Vector::from_entries(10, vec![(1, 1.0)]).unwrap();
        let v = Vector::from_entries(10, vec![(1, 2.0), (3, 3.0)]).unwrap();
        let mut out = Vector::new(10);
        par_ewise_add_vector(&pool, &mut out, None, None, &Plus::<f64>::new(), &u, &v, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(1), Some(3.0));
        assert_eq!(out.get(3), Some(3.0));
    }
}
