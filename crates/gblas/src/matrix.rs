//! Sparse matrices (`GrB_Matrix`) in CSR (compressed sparse row) form.
//!
//! The adjacency matrix of a graph stores the edge `(i, j)` at row `i`,
//! column `j` (Sec. II-A): row `i` holds the outgoing edges of vertex `i`.

use crate::error::{check_dims, check_index, GblasError, Info};
use crate::mask::{MaskValue, MatrixMask};
use crate::ops::binary::BinaryOp;
use crate::types::Scalar;

/// A sparse `nrows × ncols` matrix in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` is the slice of row `i` in `col_idx`/`values`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Create an empty matrix (`GrB_Matrix_new`).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triples in any order. Duplicate
    /// coordinates are an error; use [`Matrix::from_triples_dup`] to resolve
    /// them with an operator (`GrB_Matrix_build`).
    pub fn from_triples(nrows: usize, ncols: usize, triples: Vec<(usize, usize, T)>) -> Info<Self> {
        Self::build(nrows, ncols, triples, None)
    }

    /// Like [`Matrix::from_triples`], combining duplicates with `dup`.
    pub fn from_triples_dup(
        nrows: usize,
        ncols: usize,
        triples: Vec<(usize, usize, T)>,
        dup: &dyn BinaryOp<T, T, T>,
    ) -> Info<Self> {
        Self::build(nrows, ncols, triples, Some(dup))
    }

    fn build(
        nrows: usize,
        ncols: usize,
        mut triples: Vec<(usize, usize, T)>,
        dup: Option<&dyn BinaryOp<T, T, T>>,
    ) -> Info<Self> {
        for &(r, c, _) in &triples {
            check_index(r, nrows)?;
            check_index(c, ncols)?;
        }
        // Stable sort so duplicates combine in input order, as the spec says.
        triples.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(triples.len());
        let mut values: Vec<T> = Vec::with_capacity(triples.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triples {
            if last == Some((r, c)) {
                match dup {
                    Some(op) => {
                        let lv = values.last_mut().expect("parallel arrays");
                        *lv = op.apply(*lv, v);
                    }
                    None => {
                        return Err(GblasError::InvalidValue(format!(
                            "duplicate coordinate ({r}, {c}) in build without duplicate operator"
                        )))
                    }
                }
            } else {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from a dense row-major table of options.
    pub fn from_dense(rows: &[Vec<Option<T>>]) -> Info<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut triples = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            check_dims("row length", ncols, row.len())?;
            for (c, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    triples.push((r, c, *v));
                }
            }
        }
        Self::from_triples(nrows, ncols, triples)
    }

    /// Internal: adopt raw CSR arrays. Caller guarantees the CSR invariants
    /// (monotone `row_ptr`, in-bounds sorted-per-row unique columns).
    pub(crate) fn from_csr_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows (`GrB_Matrix_nrows`).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`GrB_Matrix_ncols`).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (`GrB_Matrix_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    /// Read the entry at `(row, col)`, if stored.
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        if row >= self.nrows {
            return None;
        }
        let (cols, vals) = self.row(row);
        cols.binary_search(&col).ok().map(|p| vals[p])
    }

    /// The sorted column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[T]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nvals(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterate over all stored `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Store `value` at `(row, col)` (`GrB_Matrix_setElement`). O(nnz) in the
    /// worst case — intended for construction and tests, not inner loops.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Info {
        check_index(row, self.nrows)?;
        check_index(col, self.ncols)?;
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(p) => self.values[lo + p] = value,
            Err(p) => {
                self.col_idx.insert(lo + p, col);
                self.values.insert(lo + p, value);
                for rp in self.row_ptr[row + 1..].iter_mut() {
                    *rp += 1;
                }
            }
        }
        Ok(())
    }

    /// Raw CSR row-pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw CSR column-index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw CSR value array, parallel to [`Matrix::col_indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Convert to a dense row-major table of options.
    pub fn to_dense(&self) -> Vec<Vec<Option<T>>> {
        let mut out = vec![vec![None; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            out[r][c] = Some(v);
        }
        out
    }

    /// A value mask over this matrix (truthy entries allow writes).
    pub fn mask(&self) -> MatrixMask
    where
        T: MaskValue,
    {
        MatrixMask::from_values(self)
    }

    /// A structural mask over this matrix (every stored entry allows writes).
    pub fn structure(&self) -> MatrixMask {
        MatrixMask::from_structure(self)
    }

    /// Resize the logical dimensions (`GrB_Matrix_resize`): shrinking
    /// drops out-of-range entries.
    pub fn resize(&mut self, nrows: usize, ncols: usize) {
        // Rebuild rows (cheap relative to typical use; resize is rare).
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..nrows.min(self.nrows) {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c < ncols {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        while row_ptr.len() < nrows + 1 {
            row_ptr.push(col_idx.len());
        }
        self.nrows = nrows;
        self.ncols = ncols;
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }

    /// Copy out the stored `(row, col, value)` triples
    /// (`GrB_Matrix_extractTuples`).
    pub fn extract_tuples(&self) -> Vec<(usize, usize, T)> {
        self.iter().collect()
    }

    /// Check CSR invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Info {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(GblasError::InvalidValue("row_ptr length".into()));
        }
        if self.row_ptr[0] != 0 || *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err(GblasError::InvalidValue("row_ptr endpoints".into()));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(GblasError::InvalidValue("parallel array length".into()));
        }
        for r in 0..self.nrows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(GblasError::InvalidValue("row_ptr not monotone".into()));
            }
            let (cols, _) = self.row(r);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(GblasError::InvalidValue(format!(
                        "row {r} columns not strictly sorted"
                    )));
                }
            }
            if let Some(&c) = cols.last() {
                check_index(c, self.ncols)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn sample() -> Matrix<f64> {
        Matrix::from_triples(3, 4, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0)]).unwrap()
    }

    #[test]
    fn dims_and_nvals() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nvals(), 3);
        m.check_invariants().unwrap();
    }

    #[test]
    fn get_present_and_absent() {
        let m = sample();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(0, 3), Some(2.0));
        assert_eq!(m.get(2, 0), Some(3.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.get(9, 0), None);
    }

    #[test]
    fn rows_are_sorted() {
        let m = Matrix::from_triples(2, 5, vec![(0, 4, 'a'), (0, 1, 'b'), (0, 2, 'c')]).unwrap();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 2, 4]);
        assert_eq!(vals, &['b', 'c', 'a']);
        assert_eq!(m.row_nvals(0), 3);
        assert_eq!(m.row_nvals(1), 0);
    }

    #[test]
    fn build_rejects_out_of_bounds() {
        assert!(Matrix::from_triples(2, 2, vec![(2, 0, 1)]).is_err());
        assert!(Matrix::from_triples(2, 2, vec![(0, 2, 1)]).is_err());
    }

    #[test]
    fn build_rejects_duplicates_without_dup() {
        let err = Matrix::from_triples(2, 2, vec![(0, 0, 1), (0, 0, 2)]).unwrap_err();
        assert!(matches!(err, GblasError::InvalidValue(_)));
    }

    #[test]
    fn build_combines_duplicates_with_dup() {
        let m =
            Matrix::from_triples_dup(2, 2, vec![(0, 0, 1), (0, 0, 2)], &Plus::<i32>::new())
                .unwrap();
        assert_eq!(m.get(0, 0), Some(3));
        assert_eq!(m.nvals(), 1);
    }

    #[test]
    fn set_inserts_and_overwrites() {
        let mut m = sample();
        m.set(1, 2, 9.0).unwrap();
        assert_eq!(m.get(1, 2), Some(9.0));
        assert_eq!(m.nvals(), 4);
        m.set(1, 2, 8.0).unwrap();
        assert_eq!(m.get(1, 2), Some(8.0));
        assert_eq!(m.nvals(), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn iter_row_major() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0)]);
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let dense = m.to_dense();
        let back = Matrix::from_dense(&dense).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn resize_drops_out_of_range() {
        let mut m = sample();
        m.resize(2, 2); // drops (0,3,2.0) and (2,0,3.0)
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.nvals(), 1);
        assert_eq!(m.get(0, 1), Some(1.0));
        m.check_invariants().unwrap();
        m.resize(5, 5);
        assert_eq!(m.nvals(), 1);
        m.set(4, 4, 9.0).unwrap();
        m.check_invariants().unwrap();
    }

    #[test]
    fn extract_tuples_round_trip() {
        let m = sample();
        let triples = m.extract_tuples();
        let back = Matrix::from_triples(3, 4, triples).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix() {
        let m: Matrix<f64> = Matrix::new(0, 0);
        assert_eq!(m.nvals(), 0);
        m.check_invariants().unwrap();
        let m2: Matrix<f64> = Matrix::new(5, 5);
        assert_eq!(m2.iter().count(), 0);
    }
}
