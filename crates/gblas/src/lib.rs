//! # gblas — a GraphBLAS implementation in Rust
//!
//! This crate implements the subset (plus extensions) of the GraphBLAS
//! specification needed to express graph algorithms in the language of
//! linear algebra, as used by the paper *"Delta-stepping SSSP: from Vertices
//! and Edges to GraphBLAS Implementations"*. It plays the role SuiteSparse:
//! GraphBLAS and GBTL play for the paper's C/C++ implementations.
//!
//! ## Objects
//!
//! * [`Vector`] — a sparse vector: a sorted list of `(index, value)` pairs
//!   with a logical size. Sets of vertices are vectors (Sec. II-D).
//! * [`Matrix`] — a sparse matrix in CSR form. Graphs are stored as
//!   adjacency matrices; sets of edges are matrices.
//! * [`VectorMask`] / [`MatrixMask`] — pre-evaluated write masks (the set of
//!   positions the mask allows). Construct with [`Vector::mask`] (value
//!   truthiness) or [`Vector::structure`] (structural mask), and likewise on
//!   matrices. Complementing is controlled by the [`Descriptor`].
//! * [`Descriptor`] — per-call options: `replace` (clear output first),
//!   `complement_mask`, `transpose_a`, `transpose_b`.
//!
//! ## Operations
//!
//! The C-API functions used in the paper's Fig. 2 map to:
//!
//! | GraphBLAS C | here |
//! |---|---|
//! | `GrB_apply` (vector/matrix) | [`ops::vector_apply`], [`ops::matrix_apply`] |
//! | `GrB_eWiseAdd` | [`ops::ewise_add_vector`], [`ops::ewise_add_matrix`] |
//! | `GrB_eWiseMult` | [`ops::ewise_mult_vector`], [`ops::ewise_mult_matrix`] |
//! | `GrB_vxm` | [`ops::vxm()`](ops::vxm()) |
//! | `GrB_mxv` | [`ops::mxv()`](ops::mxv()) |
//! | `GrB_mxm` | [`ops::mxm()`](ops::mxm()) |
//! | `GrB_reduce` | [`ops::reduce_matrix_to_vector`], [`ops::reduce_vector`], [`ops::reduce_matrix`] |
//! | `GrB_extract` / `GrB_assign` | [`ops::extract_subvector`], [`ops::assign_subvector`], … |
//! | `GxB_select` | [`ops::select_vector`], [`ops::select_matrix`] |
//! | `GrB_transpose` | [`ops::transpose()`](ops::transpose()) |
//!
//! All operations follow the GraphBLAS write semantics: compute `T`, merge
//! with the output through the optional accumulator (`Z = out ⊙ T`), then
//! write `Z` through the (possibly complemented) mask, deleting unmasked
//! stale entries when `replace` is set.
//!
//! `eWiseAdd` deliberately reproduces the specification behaviour the paper
//! calls out in Sec. V-B: on positions where only one operand is present,
//! the present value is *passed through with a typecast* — even when the
//! operator is non-commutative (e.g. `<`). See `tests/paper_pitfalls.rs` in
//! the workspace root for the reproduction of that pitfall and its
//! mask-based fix.
//!
//! ## Parallel extension
//!
//! The [`parallel`] module provides task-parallel variants of the hottest
//! kernels (`vxm`, element-wise operations, apply) over a
//! [`taskpool::ThreadPool`] — the "parallelizing within the operations"
//! improvement the paper's Sec. VI-C and VIII call for.
//!
//! ## Quick start
//!
//! ```
//! use gblas::{Matrix, Vector, Descriptor};
//! use gblas::ops::{self, semiring};
//!
//! // A 3-vertex path graph 0 -> 1 -> 2 with weights 1.0 and 2.5.
//! let a = Matrix::from_triples(3, 3, vec![(0, 1, 1.0f64), (1, 2, 2.5)]).unwrap();
//! // Distances-so-far: source 0 at distance 0.
//! let mut t = Vector::new(3);
//! t.set(0, 0.0f64).unwrap();
//! // One relaxation step: t_req = t (min.+) A   (i.e. A^T t over (min,+)).
//! let mut t_req = Vector::new(3);
//! ops::vxm(&mut t_req, None, None, &semiring::min_plus_f64(), &t, &a,
//!          Descriptor::default()).unwrap();
//! assert_eq!(t_req.get(1), Some(1.0));
//! ```

pub mod descriptor;
pub mod direction;
pub mod error;
pub mod mask;
pub mod matrix;
pub mod ops;
pub mod parallel;
pub mod types;
pub mod vector;

pub use descriptor::Descriptor;
pub use direction::Direction;
pub use error::{GblasError, Info};
pub use mask::{MaskValue, MatrixMask, VectorMask};
pub use matrix::Matrix;
pub use types::{CastTo, Index, MinPlusValue, Num, Scalar};
pub use vector::Vector;
