//! `GrB_eWiseAdd` and `GrB_eWiseMult`: element-wise operations on the union
//! or intersection of two patterns.
//!
//! `eWiseAdd` is the operation whose union semantics the paper's Sec. V-B
//! flags as a pitfall: on positions where only one operand is present, the
//! present value is passed through *with a typecast into the output domain*
//! — even when the operator is non-commutative like `<`. We reproduce that
//! behaviour bit-for-bit (the typecast is [`crate::types::CastTo`]), because
//! the paper's Fig. 2 line 48 relies on the mask-based workaround.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::write::{
    accum_merge, accum_merge_matrix, intersect_merge, mask_write_matrix, mask_write_vector,
    union_merge, SparseMat,
};
use crate::types::{CastTo, Scalar};
use crate::vector::Vector;

/// `out<mask> ⊙= u (op-union) v` (`GrB_Vector_eWiseAdd`).
///
/// Positions present in both operands get `op(u, v)`; positions present in
/// only one get that operand's value cast into the output domain.
pub fn ewise_add_vector<A, B, C, Op>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar + CastTo<C>,
    B: Scalar + CastTo<C>,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    out.check_same_size(u.size())?;
    out.check_same_size(v.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let t = union_merge(
        u.indices(),
        u.values(),
        v.indices(),
        v.values(),
        |a| a.cast(),
        |b| b.cast(),
        |a, b| op.apply(a, b),
    );
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// `out<mask> ⊙= u (op-intersect) v` (`GrB_Vector_eWiseMult`).
///
/// Only positions present in *both* operands produce a result.
pub fn ewise_mult_vector<A, B, C, Op>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    out.check_same_size(u.size())?;
    out.check_same_size(v.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let t = intersect_merge(u.indices(), u.values(), v.indices(), v.values(), |a, b| {
        op.apply(a, b)
    });
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

fn check_matrix_dims<A: Scalar, B: Scalar, C: Scalar>(
    out: &Matrix<C>,
    mask: Option<&MatrixMask>,
    u: &Matrix<A>,
    v: &Matrix<B>,
) -> Info {
    check_dims("nrows", out.nrows(), u.nrows())?;
    check_dims("ncols", out.ncols(), u.ncols())?;
    check_dims("nrows", out.nrows(), v.nrows())?;
    check_dims("ncols", out.ncols(), v.ncols())?;
    if let Some(m) = mask {
        check_dims("mask nrows", out.nrows(), m.nrows())?;
        check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    Ok(())
}

/// `out<mask> ⊙= u (op-union) v` for matrices (`GrB_Matrix_eWiseAdd`).
pub fn ewise_add_matrix<A, B, C, Op>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Matrix<A>,
    v: &Matrix<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar + CastTo<C>,
    B: Scalar + CastTo<C>,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    check_matrix_dims(out, mask, u, v)?;
    let mut t = SparseMat::empty(u.nrows(), u.ncols());
    for r in 0..u.nrows() {
        let (uc, uv) = u.row(r);
        let (vc, vv) = v.row(r);
        let merged = union_merge(uc, uv, vc, vv, |a| a.cast(), |b| b.cast(), |a, b| {
            op.apply(a, b)
        });
        t.col_idx.extend_from_slice(&merged.indices);
        t.values.extend_from_slice(&merged.values);
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

/// `out<mask> ⊙= u (op-intersect) v` for matrices — the Hadamard product
/// used by the paper's filtering pattern `A_{G1} = B ∘ A_G` (Sec. II-E).
pub fn ewise_mult_matrix<A, B, C, Op>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Matrix<A>,
    v: &Matrix<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    check_matrix_dims(out, mask, u, v)?;
    let mut t = SparseMat::empty(u.nrows(), u.ncols());
    for r in 0..u.nrows() {
        let (uc, uv) = u.row(r);
        let (vc, vv) = v.row(r);
        let merged = intersect_merge(uc, uv, vc, vv, |a, b| op.apply(a, b));
        t.col_idx.extend_from_slice(&merged.indices);
        t.values.extend_from_slice(&merged.values);
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{LOr, Lt, Min, Plus, Times};

    #[test]
    fn ewise_add_union_semantics() {
        let u = Vector::from_entries(5, vec![(0, 1.0), (2, 3.0)]).unwrap();
        let v = Vector::from_entries(5, vec![(2, 10.0), (4, 40.0)]).unwrap();
        let mut out = Vector::new(5);
        ewise_add_vector(&mut out, None, None, &Plus::<f64>::new(), &u, &v, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0), Some(1.0)); // u only: passed through
        assert_eq!(out.get(2), Some(13.0)); // both: op applied
        assert_eq!(out.get(4), Some(40.0)); // v only: passed through
    }

    #[test]
    fn ewise_add_noncommutative_pitfall() {
        // Sec. V-B: (t_Req < t) with a lone t value passes t through,
        // cast to bool — true for any non-zero value, NOT "false".
        let t_req = Vector::from_entries(3, vec![(0, 5.0f64)]).unwrap();
        let t = Vector::from_entries(3, vec![(0, 9.0f64), (1, 7.0)]).unwrap();
        let mut tless: Vector<bool> = Vector::new(3);
        ewise_add_vector(
            &mut tless,
            None,
            None,
            &Lt::<f64>::new(),
            &t_req,
            &t,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(tless.get(0), Some(true)); // both present: 5 < 9
        assert_eq!(tless.get(1), Some(true)); // t-only: 7.0 cast to bool = true (the pitfall!)
    }

    #[test]
    fn ewise_add_pitfall_fix_with_treq_mask() {
        // The paper's fix: mask the eWiseAdd with t_Req so positions with no
        // request never reach the output (Fig. 2 line 48).
        let t_req = Vector::from_entries(3, vec![(0, 5.0f64)]).unwrap();
        let t = Vector::from_entries(3, vec![(0, 9.0f64), (1, 7.0)]).unwrap();
        let mut tless: Vector<bool> = Vector::new(3);
        ewise_add_vector(
            &mut tless,
            Some(&t_req.mask()),
            None,
            &Lt::<f64>::new(),
            &t_req,
            &t,
            Descriptor::replace(),
        )
        .unwrap();
        assert_eq!(tless.get(0), Some(true));
        assert_eq!(tless.get(1), None); // masked out: correct
    }

    #[test]
    fn ewise_add_min_merges_distances() {
        // Fig. 2 line 51: t = min(t, tReq).
        let t = Vector::from_entries(4, vec![(0, 0.0), (1, 5.0)]).unwrap();
        let t_req = Vector::from_entries(4, vec![(1, 3.0), (2, 8.0)]).unwrap();
        let mut out = t.clone();
        ewise_add_vector(&mut out, None, None, &Min::<f64>::new(), &t, &t_req, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0), Some(0.0));
        assert_eq!(out.get(1), Some(3.0));
        assert_eq!(out.get(2), Some(8.0));
    }

    #[test]
    fn ewise_mult_intersection_semantics() {
        let u = Vector::from_entries(5, vec![(0, 1.0), (2, 3.0)]).unwrap();
        let v = Vector::from_entries(5, vec![(2, 10.0), (4, 40.0)]).unwrap();
        let mut out = Vector::new(5);
        ewise_mult_vector(&mut out, None, None, &Times::<f64>::new(), &u, &v, Descriptor::new())
            .unwrap();
        assert_eq!(out.nvals(), 1);
        assert_eq!(out.get(2), Some(30.0));
    }

    #[test]
    fn ewise_add_bool_accumulates_set_union() {
        // Fig. 2 line 45: s = s LOR tB.
        let s = Vector::from_entries(4, vec![(0, true)]).unwrap();
        let tb = Vector::from_entries(4, vec![(2, true)]).unwrap();
        let mut out = s.clone();
        ewise_add_vector(&mut out, None, None, &LOr, &s, &tb, Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(true));
        assert_eq!(out.get(2), Some(true));
        assert_eq!(out.nvals(), 2);
    }

    #[test]
    fn ewise_dims_checked() {
        let u: Vector<f64> = Vector::new(3);
        let v: Vector<f64> = Vector::new(4);
        let mut out: Vector<f64> = Vector::new(3);
        assert!(
            ewise_add_vector(&mut out, None, None, &Plus::<f64>::new(), &u, &v, Descriptor::new())
                .is_err()
        );
        assert!(ewise_mult_vector(
            &mut out,
            None,
            None,
            &Times::<f64>::new(),
            &u,
            &v,
            Descriptor::new()
        )
        .is_err());
    }

    #[test]
    fn matrix_hadamard_filters_pattern() {
        // A .* B keeps only positions present in both (Sec. II-E filtering).
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 4.0)]).unwrap();
        let b = Matrix::from_triples(2, 2, vec![(0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        let mut out: Matrix<f64> = Matrix::new(2, 2);
        ewise_mult_matrix(&mut out, None, None, &Times::<f64>::new(), &a, &b, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0, 0), None);
        assert_eq!(out.get(0, 1), Some(3.0));
        assert_eq!(out.get(1, 1), Some(4.0));
    }

    #[test]
    fn matrix_ewise_add_union() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1)]).unwrap();
        let b = Matrix::from_triples(2, 2, vec![(0, 0, 10), (1, 0, 20)]).unwrap();
        let mut out: Matrix<i32> = Matrix::new(2, 2);
        ewise_add_matrix(&mut out, None, None, &Plus::<i32>::new(), &a, &b, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0, 0), Some(11));
        assert_eq!(out.get(1, 0), Some(20));
        out.check_invariants().unwrap();
    }
}
