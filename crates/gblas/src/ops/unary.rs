//! Unary operators (`GrB_UnaryOp`).
//!
//! The paper's Fig. 2 builds all of its filters from `GrB_apply` with unary
//! operators — both the named built-ins (`GrB_IDENTITY_FP64`,
//! `GrB_IDENTITY_BOOL`) and user-defined threshold predicates
//! (`delta_leq`, `delta_gt`, `delta_i_range`, `delta_i_geq`). The built-ins
//! live here; user-defined operators are made with [`FnUnary`].

use std::marker::PhantomData;

use crate::types::{CastTo, Num};

/// A unary function `A -> B` usable with `apply`.
///
/// Object safe, so operators can also be passed as `&dyn UnaryOp<A, B>`.
pub trait UnaryOp<A, B>: Send + Sync {
    /// Evaluate the operator.
    fn apply(&self, a: A) -> B;
}

/// `GrB_IDENTITY_T`: pass the value through, typecasting between domains —
/// e.g. `Identity::<f64, bool>` mirrors `GrB_IDENTITY_BOOL` applied to an
/// `FP64` vector (Fig. 2, line 28).
#[derive(Debug, Default, Clone, Copy)]
pub struct Identity<A, B = A>(PhantomData<(A, B)>);

impl<A, B> Identity<A, B> {
    /// Construct the identity operator.
    pub fn new() -> Self {
        Identity(PhantomData)
    }
}

impl<A: CastTo<B> + Send + Sync + Copy, B: Send + Sync> UnaryOp<A, B> for Identity<A, B> {
    #[inline]
    fn apply(&self, a: A) -> B {
        a.cast()
    }
}

/// `GrB_LNOT`: logical negation.
#[derive(Debug, Default, Clone, Copy)]
pub struct LNot;

impl UnaryOp<bool, bool> for LNot {
    #[inline]
    fn apply(&self, a: bool) -> bool {
        !a
    }
}

/// `GrB_AINV_T`: additive inverse (`0 - x`).
#[derive(Debug, Default, Clone, Copy)]
pub struct AInv<T>(PhantomData<T>);

impl<T> AInv<T> {
    /// Construct the additive-inverse operator.
    pub fn new() -> Self {
        AInv(PhantomData)
    }
}

impl<T: Num> UnaryOp<T, T> for AInv<T> {
    #[inline]
    fn apply(&self, a: T) -> T {
        T::zero() - a
    }
}

/// `GrB_MINV_T`: multiplicative inverse (`1 / x`). Defined for float types.
#[derive(Debug, Default, Clone, Copy)]
pub struct MInv<T>(PhantomData<T>);

impl<T> MInv<T> {
    /// Construct the multiplicative-inverse operator.
    pub fn new() -> Self {
        MInv(PhantomData)
    }
}

impl UnaryOp<f64, f64> for MInv<f64> {
    #[inline]
    fn apply(&self, a: f64) -> f64 {
        1.0 / a
    }
}
impl UnaryOp<f32, f32> for MInv<f32> {
    #[inline]
    fn apply(&self, a: f32) -> f32 {
        1.0 / a
    }
}

/// `GxB_ONE_T`: map every present value to the multiplicative identity.
/// Handy for turning a weighted pattern into an unweighted one.
#[derive(Debug, Default, Clone, Copy)]
pub struct One<T>(PhantomData<T>);

impl<T> One<T> {
    /// Construct the constant-one operator.
    pub fn new() -> Self {
        One(PhantomData)
    }
}

impl<T: Num> UnaryOp<T, T> for One<T> {
    #[inline]
    fn apply(&self, _a: T) -> T {
        T::one()
    }
}

/// A user-defined unary operator from a closure — the counterpart of
/// `GrB_UnaryOp_new` used for the paper's `delta_leq`, `delta_gt`,
/// `delta_i_range`, and `delta_i_geq` threshold predicates.
///
/// ```
/// use gblas::ops::{FnUnary, UnaryOp};
/// let delta = 1.0f64;
/// let delta_leq = FnUnary::new(move |w: f64| w > 0.0 && w <= delta);
/// assert!(delta_leq.apply(0.5));
/// assert!(!delta_leq.apply(2.0));
/// ```
pub struct FnUnary<F>(F);

impl<F> FnUnary<F> {
    /// Wrap a closure as a unary operator.
    pub fn new(f: F) -> Self {
        FnUnary(f)
    }
}

impl<A, B, F> UnaryOp<A, B> for FnUnary<F>
where
    F: Fn(A) -> B + Send + Sync,
{
    #[inline]
    fn apply(&self, a: A) -> B {
        (self.0)(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_same_domain() {
        let id = Identity::<f64>::new();
        assert_eq!(id.apply(2.5), 2.5);
    }

    #[test]
    fn identity_casts_to_bool() {
        // GrB_IDENTITY_BOOL on an FP64 input: non-zero is true.
        let id = Identity::<f64, bool>::new();
        assert!(id.apply(3.0));
        assert!(!id.apply(0.0));
    }

    #[test]
    fn lnot() {
        assert!(!LNot.apply(true));
        assert!(LNot.apply(false));
    }

    #[test]
    fn ainv_minv_one() {
        assert_eq!(AInv::<i32>::new().apply(5), -5);
        assert_eq!(MInv::<f64>::new().apply(4.0), 0.25);
        assert_eq!(One::<f64>::new().apply(17.0), 1.0);
    }

    #[test]
    fn fn_unary_range_filter() {
        // The paper's delta_i_range: i*delta <= t < (i+1)*delta.
        let (i, delta) = (2.0f64, 1.0f64);
        let in_range = FnUnary::new(move |t: f64| i * delta <= t && t < (i + 1.0) * delta);
        assert!(in_range.apply(2.0));
        assert!(in_range.apply(2.9));
        assert!(!in_range.apply(3.0));
        assert!(!in_range.apply(1.9));
    }

    #[test]
    fn dyn_object_safety() {
        let ops: Vec<Box<dyn UnaryOp<f64, f64>>> = vec![
            Box::new(Identity::<f64>::new()),
            Box::new(AInv::<f64>::new()),
        ];
        assert_eq!(ops[0].apply(1.5), 1.5);
        assert_eq!(ops[1].apply(1.5), -1.5);
    }
}
