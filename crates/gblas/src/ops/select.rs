//! `GxB_select`-style filtering: keep entries satisfying a predicate on
//! `(position, value)`.
//!
//! The GraphBLAS C 1.x API has no select, which is why Fig. 2 needs *two*
//! `GrB_apply` calls per filter; `select` does the same thing in one pass
//! and is the obvious single-operation fusion of that idiom (Sec. VI-B's
//! first fusion target). The unfused delta-stepping deliberately avoids it;
//! the fused variants use it.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::write::{
    accum_merge, accum_merge_matrix, mask_write_matrix, mask_write_vector, SparseMat, SparseVec,
};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= input where pred(index, value)`.
pub fn select_vector<T, P>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    pred: P,
    input: &Vector<T>,
    desc: Descriptor,
) -> Info
where
    T: Scalar,
    P: Fn(usize, T) -> bool,
{
    out.check_same_size(input.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }
    let mut t = SparseVec::with_capacity(input.nvals());
    for (i, v) in input.iter() {
        if pred(i, v) {
            t.push(i, v);
        }
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// `out<mask> ⊙= input where pred(row, col, value)`.
///
/// Building the light-edge matrix in one pass — `A_L = select(A, w ≤ Δ)` —
/// replaces the two-apply idiom of Fig. 2 lines 15–17.
pub fn select_matrix<T, P>(
    out: &mut Matrix<T>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    pred: P,
    input: &Matrix<T>,
    desc: Descriptor,
) -> Info
where
    T: Scalar,
    P: Fn(usize, usize, T) -> bool,
{
    check_dims("nrows", out.nrows(), input.nrows())?;
    check_dims("ncols", out.ncols(), input.ncols())?;
    if let Some(m) = mask {
        check_dims("mask nrows", out.nrows(), m.nrows())?;
        check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    let mut t = SparseMat::empty(input.nrows(), input.ncols());
    for r in 0..input.nrows() {
        let (cols, vals) = input.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if pred(r, c, v) {
                t.col_idx.push(c);
                t.values.push(v);
            }
        }
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_vector_by_value() {
        let v = Vector::from_entries(5, vec![(0, 1.0), (1, 3.0), (3, 2.0)]).unwrap();
        let mut out = Vector::new(5);
        select_vector(&mut out, None, None, |_, x| x <= 2.0, &v, Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(1.0));
        assert_eq!(out.get(1), None);
        assert_eq!(out.get(3), Some(2.0));
    }

    #[test]
    fn select_vector_by_index() {
        let v = Vector::full(6, 1u8);
        let mut out = Vector::new(6);
        select_vector(&mut out, None, None, |i, _| i % 2 == 0, &v, Descriptor::new()).unwrap();
        assert_eq!(out.nvals(), 3);
        assert_eq!(out.indices(), &[0, 2, 4]);
    }

    #[test]
    fn select_matrix_light_edges_single_pass() {
        let delta = 1.5f64;
        let a = Matrix::from_triples(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 0.5), (1, 1, 3.0)],
        )
        .unwrap();
        let mut al: Matrix<f64> = Matrix::new(2, 2);
        select_matrix(&mut al, None, None, |_, _, w| w <= delta, &a, Descriptor::new()).unwrap();
        assert_eq!(al.get(0, 0), Some(1.0));
        assert_eq!(al.get(1, 0), Some(0.5));
        assert_eq!(al.get(0, 1), None);
        al.check_invariants().unwrap();
        // And the heavy complement:
        let mut ah: Matrix<f64> = Matrix::new(2, 2);
        select_matrix(&mut ah, None, None, |_, _, w| w > delta, &a, Descriptor::new()).unwrap();
        assert_eq!(ah.nvals() + al.nvals(), a.nvals());
    }

    #[test]
    fn select_off_diagonal() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)]).unwrap();
        let mut out: Matrix<i32> = Matrix::new(2, 2);
        select_matrix(&mut out, None, None, |r, c, _| r != c, &a, Descriptor::new()).unwrap();
        assert_eq!(out.nvals(), 1);
        assert_eq!(out.get(0, 1), Some(2));
    }
}
