//! `GrB_apply` with a binary operator and a bound scalar
//! (`GrB_Vector_apply_BinaryOp1st/2nd`).
//!
//! This is the operation behind the paper's Sec. IV-C observation that
//! computing a request row is "similar to a scaled vector addition or AXPY
//! operation": `Req_v = t[v] + a_v` is exactly
//! `apply_bind_first(Plus, t[v], a_v)` — a scalar bound to the first
//! argument of `+`, mapped over a sparse row.

use crate::descriptor::Descriptor;
use crate::error::Info;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::unary::FnUnary;
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= op(x, input[i])` — scalar bound to the first operand.
pub fn vector_apply_bind_first<A, B, C, Op>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    x: A,
    input: &Vector<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C>,
{
    let unary = FnUnary::new(move |v: B| op.apply(x, v));
    crate::ops::apply::vector_apply(out, mask, accum, &unary, input, desc)
}

/// `out<mask> ⊙= op(input[i], y)` — scalar bound to the second operand.
pub fn vector_apply_bind_second<A, B, C, Op>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    input: &Vector<A>,
    y: B,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C>,
{
    let unary = FnUnary::new(move |v: A| op.apply(v, y));
    crate::ops::apply::vector_apply(out, mask, accum, &unary, input, desc)
}

/// `out<mask> ⊙= op(x, input[i,j])` for matrices.
pub fn matrix_apply_bind_first<A, B, C, Op>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    x: A,
    input: &Matrix<B>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C>,
{
    let unary = FnUnary::new(move |v: B| op.apply(x, v));
    crate::ops::apply::matrix_apply(out, mask, accum, &unary, input, desc)
}

/// `out<mask> ⊙= op(input[i,j], y)` for matrices — e.g. the edge-centric
/// point-wise `βA` of Sec. II-C.
pub fn matrix_apply_bind_second<A, B, C, Op>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    input: &Matrix<A>,
    y: B,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C>,
{
    let unary = FnUnary::new(move |v: A| op.apply(v, y));
    crate::ops::apply::matrix_apply(out, mask, accum, &unary, input, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Minus, Plus, PlusSat, Times};

    #[test]
    fn axpy_request_row() {
        // Sec. IV-C: Req_v = t[v] + a_v over (min,+)'s multiplicative op.
        let a_v = Vector::from_entries(5, vec![(1, 1.0), (3, 2.5)]).unwrap();
        let tent_v = 4.0f64;
        let mut req: Vector<f64> = Vector::new(5);
        vector_apply_bind_first(
            &mut req,
            None,
            None,
            &PlusSat::<f64>::new(),
            tent_v,
            &a_v,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(req.get(1), Some(5.0));
        assert_eq!(req.get(3), Some(6.5));
        assert_eq!(req.nvals(), 2);
    }

    #[test]
    fn bind_order_matters_for_noncommutative() {
        let v = Vector::from_entries(3, vec![(0, 10.0)]).unwrap();
        let mut first: Vector<f64> = Vector::new(3);
        vector_apply_bind_first(&mut first, None, None, &Minus::<f64>::new(), 1.0, &v, Descriptor::new())
            .unwrap();
        assert_eq!(first.get(0), Some(-9.0)); // 1 - 10
        let mut second: Vector<f64> = Vector::new(3);
        vector_apply_bind_second(&mut second, None, None, &Minus::<f64>::new(), &v, 1.0, Descriptor::new())
            .unwrap();
        assert_eq!(second.get(0), Some(9.0)); // 10 - 1
    }

    #[test]
    fn matrix_scale_is_beta_a() {
        // βA: scale every edge (the edge-centric point-wise op).
        let a = Matrix::from_triples(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let mut out: Matrix<f64> = Matrix::new(2, 2);
        matrix_apply_bind_first(&mut out, None, None, &Times::<f64>::new(), 10.0, &a, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0, 1), Some(20.0));
        assert_eq!(out.get(1, 0), Some(30.0));
    }

    #[test]
    fn matrix_bind_second_with_accum() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1)]).unwrap();
        let mut out = Matrix::from_triples(2, 2, vec![(0, 0, 100), (1, 1, 7)]).unwrap();
        matrix_apply_bind_second(
            &mut out,
            None,
            Some(&Plus::<i32>::new()),
            &Plus::<i32>::new(),
            &a,
            5,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(0, 0), Some(106)); // 100 + (1 + 5)
        assert_eq!(out.get(1, 1), Some(7)); // untouched via accum union
    }
}
