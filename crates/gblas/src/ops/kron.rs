//! Kronecker product (`GxB_kron`): the generator of the Kronecker/RMAT
//! graph family the GraphChallenge datasets (Sec. VI-A) are built from.
//!
//! `C = A ⊗ B` has size `(A.nrows·B.nrows) × (A.ncols·B.ncols)` with
//! `C[i_a·B.nrows + i_b, j_a·B.ncols + j_b] = mul(A[i_a,j_a], B[i_b,j_b])`.

use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::types::Scalar;

/// Compute the Kronecker product `A ⊗ B` under `mul`.
pub fn kron<A, B, C, Op>(mul: &Op, a: &Matrix<A>, b: &Matrix<B>) -> Matrix<C>
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    let nrows = a.nrows() * b.nrows();
    let ncols = a.ncols() * b.ncols();
    let nnz = a.nvals() * b.nvals();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values: Vec<C> = Vec::with_capacity(nnz);
    for ia in 0..a.nrows() {
        let (acols, avals) = a.row(ia);
        for ib in 0..b.nrows() {
            let (bcols, bvals) = b.row(ib);
            // Output columns ja*B.ncols + jb ascend because ja and jb do.
            for (&ja, &av) in acols.iter().zip(avals.iter()) {
                for (&jb, &bv) in bcols.iter().zip(bvals.iter()) {
                    col_idx.push(ja * b.ncols() + jb);
                    values.push(mul.apply(av, bv));
                }
            }
            row_ptr.push(col_idx.len());
        }
    }
    Matrix::from_csr_unchecked(nrows, ncols, row_ptr, col_idx, values)
}

/// The `k`-th Kronecker power `A ⊗ A ⊗ … ⊗ A` (`k ≥ 1`) — `k` levels of
/// the recursive RMAT construction.
pub fn kron_power<T, Op>(mul: &Op, a: &Matrix<T>, k: u32) -> Matrix<T>
where
    T: Scalar,
    Op: BinaryOp<T, T, T> + ?Sized,
{
    assert!(k >= 1, "kron power needs k >= 1");
    let mut acc = a.clone();
    for _ in 1..k {
        acc = kron(mul, &acc, a);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Times;

    #[test]
    fn kron_small_dense() {
        // [1 2] ⊗ [0 1]  has block structure [0 1 0 2; 1 0 2 0; ...]
        // [3 4]   [1 0]
        let a = Matrix::from_dense(&[
            vec![Some(1.0), Some(2.0)],
            vec![Some(3.0), Some(4.0)],
        ])
        .unwrap();
        let b = Matrix::from_dense(&[
            vec![None, Some(1.0)],
            vec![Some(1.0), None],
        ])
        .unwrap();
        let c = kron(&Times::<f64>::new(), &a, &b);
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.nvals(), 8);
        assert_eq!(c.get(0, 1), Some(1.0)); // a00*b01
        assert_eq!(c.get(1, 0), Some(1.0)); // a00*b10
        assert_eq!(c.get(0, 3), Some(2.0)); // a01*b01
        assert_eq!(c.get(3, 2), Some(4.0)); // a11*b10
        assert_eq!(c.get(0, 0), None);
        c.check_invariants().unwrap();
    }

    #[test]
    fn kron_nnz_is_product() {
        let a = Matrix::from_triples(3, 3, vec![(0, 1, 2.0), (2, 0, 3.0)]).unwrap();
        let b = Matrix::from_triples(2, 2, vec![(0, 0, 1.0), (1, 1, 5.0), (0, 1, 7.0)]).unwrap();
        let c = kron(&Times::<f64>::new(), &a, &b);
        assert_eq!(c.nvals(), a.nvals() * b.nvals());
        assert_eq!(c.nrows(), 6);
        c.check_invariants().unwrap();
    }

    #[test]
    fn kron_power_grows_like_rmat() {
        // The 2x2 seed of the Kronecker graph model; its k-th power has
        // 4^k vertices... rows: 2^k.
        let seed = Matrix::from_dense(&[
            vec![Some(1.0), Some(1.0)],
            vec![Some(1.0), None],
        ])
        .unwrap();
        let g3 = kron_power(&Times::<f64>::new(), &seed, 3);
        assert_eq!(g3.nrows(), 8);
        assert_eq!(g3.nvals(), 27); // 3^k edges
        g3.check_invariants().unwrap();
        let g1 = kron_power(&Times::<f64>::new(), &seed, 1);
        assert_eq!(g1, seed);
    }

    #[test]
    fn kron_with_empty_factor() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1.0)]).unwrap();
        let empty: Matrix<f64> = Matrix::new(2, 2);
        let c = kron(&Times::<f64>::new(), &a, &empty);
        assert_eq!(c.nvals(), 0);
        assert_eq!(c.nrows(), 4);
        c.check_invariants().unwrap();
    }
}
