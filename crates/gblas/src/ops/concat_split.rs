//! `GxB_Matrix_concat` / `GxB_Matrix_split`: assemble a matrix from a
//! grid of tiles, and cut one back apart.
//!
//! Tiling is the blocked-algorithms counterpart of the paper's Sec. VIII
//! outlook (SuperMatrix/MAGMA-style algorithms-by-blocks for GraphBLAS):
//! a runtime that schedules per-tile tasks needs exactly these two
//! operations to move between the flat and the blocked representation.

use crate::error::{GblasError, Info};
use crate::matrix::Matrix;
use crate::types::Scalar;

/// Concatenate a `tiles_r × tiles_c` grid of tiles (row-major in `tiles`)
/// into one matrix (`GxB_Matrix_concat`). Tiles in the same block-row
/// must agree on `nrows`, tiles in the same block-column on `ncols`.
pub fn concat<T: Scalar>(tiles: &[&Matrix<T>], tiles_r: usize, tiles_c: usize) -> Info<Matrix<T>> {
    if tiles_r == 0 || tiles_c == 0 || tiles.len() != tiles_r * tiles_c {
        return Err(GblasError::InvalidValue(format!(
            "expected {tiles_r} x {tiles_c} = {} tiles, got {}",
            tiles_r * tiles_c,
            tiles.len()
        )));
    }
    let tile = |br: usize, bc: usize| tiles[br * tiles_c + bc];
    // Validate the grid and compute block offsets.
    let mut row_heights = Vec::with_capacity(tiles_r);
    for br in 0..tiles_r {
        let h = tile(br, 0).nrows();
        for bc in 1..tiles_c {
            if tile(br, bc).nrows() != h {
                return Err(GblasError::dims(
                    format!("tile row {br} height {h}"),
                    format!("tile ({br}, {bc}) height {}", tile(br, bc).nrows()),
                ));
            }
        }
        row_heights.push(h);
    }
    let mut col_widths = Vec::with_capacity(tiles_c);
    for bc in 0..tiles_c {
        let w = tile(0, bc).ncols();
        for br in 1..tiles_r {
            if tile(br, bc).ncols() != w {
                return Err(GblasError::dims(
                    format!("tile column {bc} width {w}"),
                    format!("tile ({br}, {bc}) width {}", tile(br, bc).ncols()),
                ));
            }
        }
        col_widths.push(w);
    }
    let nrows: usize = row_heights.iter().sum();
    let ncols: usize = col_widths.iter().sum();
    let col_offsets: Vec<usize> = col_widths
        .iter()
        .scan(0usize, |acc, &w| {
            let off = *acc;
            *acc += w;
            Some(off)
        })
        .collect();

    let nnz: usize = tiles.iter().map(|t| t.nvals()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values: Vec<T> = Vec::with_capacity(nnz);
    for (br, &height) in row_heights.iter().enumerate() {
        for local_r in 0..height {
            // Tiles in a block-row are disjoint in columns and visited
            // left-to-right, so the output row stays sorted.
            for (bc, &off) in col_offsets.iter().enumerate() {
                let (cols, vals) = tile(br, bc).row(local_r);
                col_idx.extend(cols.iter().map(|&c| c + off));
                values.extend_from_slice(vals);
            }
            row_ptr.push(col_idx.len());
        }
    }
    Ok(Matrix::from_csr_unchecked(nrows, ncols, row_ptr, col_idx, values))
}

/// Split a matrix into a grid of tiles (`GxB_Matrix_split`): `row_sizes`
/// and `col_sizes` give the tile heights/widths and must sum to the
/// matrix dimensions. Returns tiles row-major.
pub fn split<T: Scalar>(
    a: &Matrix<T>,
    row_sizes: &[usize],
    col_sizes: &[usize],
) -> Info<Vec<Matrix<T>>> {
    if row_sizes.iter().sum::<usize>() != a.nrows() {
        return Err(GblasError::dims(
            format!("row sizes summing to {}", a.nrows()),
            format!("sum {}", row_sizes.iter().sum::<usize>()),
        ));
    }
    if col_sizes.iter().sum::<usize>() != a.ncols() {
        return Err(GblasError::dims(
            format!("col sizes summing to {}", a.ncols()),
            format!("sum {}", col_sizes.iter().sum::<usize>()),
        ));
    }
    if row_sizes.contains(&0) || col_sizes.contains(&0) {
        return Err(GblasError::InvalidValue("zero-sized tile".into()));
    }
    let col_bounds: Vec<usize> = col_sizes
        .iter()
        .scan(0usize, |acc, &w| {
            *acc += w;
            Some(*acc)
        })
        .collect();

    let mut out = Vec::with_capacity(row_sizes.len() * col_sizes.len());
    let mut row_start = 0usize;
    for &h in row_sizes {
        // Build all tiles of this block-row in one sweep over its rows.
        let mut parts: Vec<(Vec<usize>, Vec<usize>, Vec<T>)> = col_sizes
            .iter()
            .map(|_| (vec![0usize], Vec::new(), Vec::new()))
            .collect();
        for r in row_start..row_start + h {
            let (cols, vals) = a.row(r);
            let mut p = 0usize; // cursor into this row's entries
            for (bc, &hi) in col_bounds.iter().enumerate() {
                let lo = if bc == 0 { 0 } else { col_bounds[bc - 1] };
                let (ref mut rp, ref mut ci, ref mut vv) = parts[bc];
                while p < cols.len() && cols[p] < hi {
                    ci.push(cols[p] - lo);
                    vv.push(vals[p]);
                    p += 1;
                }
                rp.push(ci.len());
            }
        }
        for ((rp, ci, vv), &w) in parts.into_iter().zip(col_sizes.iter()) {
            out.push(Matrix::from_csr_unchecked(h, w, rp, ci, vv));
        }
        row_start += h;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<i32> {
        Matrix::from_triples(
            4,
            4,
            vec![
                (0, 0, 1),
                (0, 3, 2),
                (1, 1, 3),
                (2, 2, 4),
                (3, 0, 5),
                (3, 3, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn split_then_concat_round_trips() {
        let a = sample();
        for (rs, cs) in [
            (vec![2usize, 2], vec![2usize, 2]),
            (vec![1, 3], vec![3, 1]),
            (vec![4], vec![4]),
            (vec![1, 1, 1, 1], vec![2, 2]),
        ] {
            let tiles = split(&a, &rs, &cs).unwrap();
            assert_eq!(tiles.len(), rs.len() * cs.len());
            let refs: Vec<&Matrix<i32>> = tiles.iter().collect();
            let back = concat(&refs, rs.len(), cs.len()).unwrap();
            assert_eq!(back, a, "rs {rs:?} cs {cs:?}");
            back.check_invariants().unwrap();
        }
    }

    #[test]
    fn split_places_entries_in_right_tiles() {
        let a = sample();
        let tiles = split(&a, &[2, 2], &[2, 2]).unwrap();
        // Tile (0,0): entries with r<2, c<2.
        assert_eq!(tiles[0].get(0, 0), Some(1));
        assert_eq!(tiles[0].get(1, 1), Some(3));
        assert_eq!(tiles[0].nvals(), 2);
        // Tile (0,1): (0,3,2) becomes (0,1).
        assert_eq!(tiles[1].get(0, 1), Some(2));
        assert_eq!(tiles[1].nvals(), 1);
        // Tile (1,0): (3,0,5) becomes (1,0).
        assert_eq!(tiles[2].get(1, 0), Some(5));
        // Tile (1,1): (2,2,4) -> (0,0), (3,3,6) -> (1,1).
        assert_eq!(tiles[3].get(0, 0), Some(4));
        assert_eq!(tiles[3].get(1, 1), Some(6));
        for t in &tiles {
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn concat_rejects_ragged_grids() {
        let a: Matrix<i32> = Matrix::new(2, 2);
        let b: Matrix<i32> = Matrix::new(3, 2); // wrong height for row 0
        assert!(concat(&[&a, &b], 1, 2).is_err());
        let c: Matrix<i32> = Matrix::new(2, 3); // wrong width for column 0
        assert!(concat(&[&a, &c], 2, 1).is_err());
        assert!(concat(&[&a], 1, 2).is_err()); // wrong tile count
        assert!(concat::<i32>(&[], 0, 0).is_err());
    }

    #[test]
    fn split_rejects_bad_partitions() {
        let a = sample();
        assert!(split(&a, &[2, 3], &[2, 2]).is_err()); // rows sum to 5
        assert!(split(&a, &[2, 2], &[4, 1]).is_err()); // cols sum to 5
        assert!(split(&a, &[4, 0], &[2, 2]).is_err()); // zero tile
    }

    #[test]
    fn concat_of_empty_tiles() {
        let z: Matrix<f64> = Matrix::new(2, 3);
        let m = concat(&[&z, &z, &z, &z], 2, 2).unwrap();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 6);
        assert_eq!(m.nvals(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn blocked_spmv_equals_flat_spmv() {
        // Algorithms-by-blocks sanity: (min,+) vxm over the flat matrix
        // equals assembling tile-local products.
        use crate::ops::semiring::min_plus_f64;
        use crate::vector::Vector;
        let a = Matrix::from_triples(
            4,
            4,
            vec![(0, 1, 1.0), (1, 3, 2.0), (2, 0, 0.5), (3, 2, 1.5)],
        )
        .unwrap();
        let u = Vector::from_entries(4, vec![(0, 0.0), (2, 1.0)]).unwrap();
        let mut flat = Vector::new(4);
        crate::ops::vxm::vxm(
            &mut flat,
            None,
            None,
            &min_plus_f64(),
            &u,
            &a,
            crate::Descriptor::new(),
        )
        .unwrap();
        // Blocked: split 2x2, compute per-block, merge with min.
        let tiles = split(&a, &[2, 2], &[2, 2]).unwrap();
        let u_dense = u.to_dense();
        let mut blocked = [f64::INFINITY; 4];
        for br in 0..2 {
            for bc in 0..2 {
                let t = &tiles[br * 2 + bc];
                for (lr, lc, w) in t.iter() {
                    if let Some(uv) = u_dense[br * 2 + lr] {
                        let j = bc * 2 + lc;
                        blocked[j] = blocked[j].min(uv + w);
                    }
                }
            }
        }
        for (j, &got) in blocked.iter().enumerate() {
            let expect = flat.get(j).unwrap_or(f64::INFINITY);
            assert_eq!(got, expect, "column {j}");
        }
    }
}
