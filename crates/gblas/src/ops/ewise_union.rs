//! `GxB_eWiseUnion`: element-wise union with explicit fill values — the
//! operation SuiteSparse later added as the *proper* fix for the very
//! pitfall the paper's Sec. V-B documents.
//!
//! Where `eWiseAdd` passes a lone operand through (typecast and all),
//! `eWiseUnion` always applies the operator, substituting `alpha` for a
//! missing `u` entry and `beta` for a missing `v` entry. The paper's
//! troublesome `t_Req < t` becomes simply
//! `ewise_union(Lt, t_Req, ∞, t, ∞)`: a missing `t` means "still at ∞",
//! and a missing `t_Req` means "no request" — both compare correctly with
//! no mask tricks.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::write::{
    accum_merge, accum_merge_matrix, mask_write_matrix, mask_write_vector, union_merge, SparseMat,
};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= union(u ∪ alpha, v ∪ beta) under op`
/// (`GxB_Vector_eWiseUnion`).
#[allow(clippy::too_many_arguments)]
pub fn ewise_union_vector<A, B, C, Op>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Vector<A>,
    alpha: A,
    v: &Vector<B>,
    beta: B,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    out.check_same_size(u.size())?;
    out.check_same_size(v.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let t = union_merge(
        u.indices(),
        u.values(),
        v.indices(),
        v.values(),
        |a| op.apply(a, beta),
        |b| op.apply(alpha, b),
        |a, b| op.apply(a, b),
    );
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// Matrix form of [`ewise_union_vector`] (`GxB_Matrix_eWiseUnion`).
#[allow(clippy::too_many_arguments)]
pub fn ewise_union_matrix<A, B, C, Op>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    op: &Op,
    u: &Matrix<A>,
    alpha: A,
    v: &Matrix<B>,
    beta: B,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
    Op: BinaryOp<A, B, C> + ?Sized,
{
    check_dims("nrows", out.nrows(), u.nrows())?;
    check_dims("ncols", out.ncols(), u.ncols())?;
    check_dims("nrows", out.nrows(), v.nrows())?;
    check_dims("ncols", out.ncols(), v.ncols())?;
    if let Some(m) = mask {
        check_dims("mask nrows", out.nrows(), m.nrows())?;
        check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    let mut t = SparseMat::empty(u.nrows(), u.ncols());
    for r in 0..u.nrows() {
        let (uc, uv) = u.row(r);
        let (vc, vv) = v.row(r);
        let merged = union_merge(
            uc,
            uv,
            vc,
            vv,
            |a| op.apply(a, beta),
            |b| op.apply(alpha, b),
            |a, b| op.apply(a, b),
        );
        t.col_idx.extend_from_slice(&merged.indices);
        t.values.extend_from_slice(&merged.values);
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Lt, Min, Plus};

    #[test]
    fn union_fills_missing_sides() {
        let u = Vector::from_entries(4, vec![(0, 1.0), (2, 3.0)]).unwrap();
        let v = Vector::from_entries(4, vec![(2, 10.0), (3, 30.0)]).unwrap();
        let mut out: Vector<f64> = Vector::new(4);
        ewise_union_vector(
            &mut out, None, None, &Plus::<f64>::new(), &u, 100.0, &v, 200.0, Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(0), Some(201.0)); // u + beta
        assert_eq!(out.get(2), Some(13.0)); // both
        assert_eq!(out.get(3), Some(130.0)); // alpha + v
        assert_eq!(out.get(1), None); // neither: still absent
    }

    #[test]
    fn fixes_the_sec_vb_pitfall_directly() {
        // t_Req < t with missing values defaulting to ∞ — no mask needed,
        // no typecast pass-through, zero values fine.
        let t_req = Vector::from_entries(4, vec![(0, 0.0f64), (1, 5.0)]).unwrap();
        let t = Vector::from_entries(4, vec![(0, 2.0f64), (2, 7.0)]).unwrap();
        let mut tless: Vector<bool> = Vector::new(4);
        ewise_union_vector(
            &mut tless,
            None,
            None,
            &Lt::<f64>::new(),
            &t_req,
            f64::INFINITY,
            &t,
            f64::INFINITY,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(tless.get(0), Some(true)); // 0.0 < 2.0: zero value handled
        assert_eq!(tless.get(1), Some(true)); // 5.0 < ∞: new vertex handled
        assert_eq!(tless.get(2), Some(false)); // ∞ < 7.0: lone t handled
        assert_eq!(tless.get(3), None); // neither present
    }

    #[test]
    fn min_with_infinity_fill_is_ewise_add_min() {
        // With ∞ fills, union-min equals eWiseAdd-min (a consistency check).
        let u = Vector::from_entries(5, vec![(0, 4.0), (2, 1.0)]).unwrap();
        let v = Vector::from_entries(5, vec![(2, 3.0), (4, 2.0)]).unwrap();
        let mut via_union: Vector<f64> = Vector::new(5);
        ewise_union_vector(
            &mut via_union,
            None,
            None,
            &Min::<f64>::new(),
            &u,
            f64::INFINITY,
            &v,
            f64::INFINITY,
            Descriptor::new(),
        )
        .unwrap();
        let mut via_add: Vector<f64> = Vector::new(5);
        crate::ops::ewise::ewise_add_vector(
            &mut via_add, None, None, &Min::<f64>::new(), &u, &v, Descriptor::new(),
        )
        .unwrap();
        assert_eq!(via_union, via_add);
    }

    #[test]
    fn matrix_union() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1)]).unwrap();
        let b = Matrix::from_triples(2, 2, vec![(1, 1, 5)]).unwrap();
        let mut out: Matrix<i32> = Matrix::new(2, 2);
        ewise_union_matrix(
            &mut out, None, None, &Plus::<i32>::new(), &a, -10, &b, -20, Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(0, 0), Some(-19)); // 1 + beta
        assert_eq!(out.get(1, 1), Some(-5)); // alpha + 5
        assert_eq!(out.nvals(), 2);
    }

    #[test]
    fn dims_checked() {
        let u: Vector<f64> = Vector::new(3);
        let v: Vector<f64> = Vector::new(4);
        let mut out: Vector<f64> = Vector::new(3);
        assert!(ewise_union_vector(
            &mut out, None, None, &Plus::<f64>::new(), &u, 0.0, &v, 0.0, Descriptor::new(),
        )
        .is_err());
    }
}
