//! `GrB_assign`: scatter a vector (or a constant) into selected positions of
//! the output.
//!
//! Assign differs from every other operation in one respect: positions
//! *outside* the assigned region are untouched (they are not part of the
//! computed pattern, so an unmasked, non-replacing assign never deletes
//! them).

use crate::descriptor::Descriptor;
use crate::error::{check_dims, check_index, Info};
use crate::mask::VectorMask;
use crate::ops::binary::BinaryOp;
use crate::ops::write::{mask_write_vector, union_merge, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out[index] ⊙= value` (`GrB_Vector_assign_Scalar` on one index, i.e.
/// `setElement` with an accumulator).
pub fn assign_element<T: Scalar>(
    out: &mut Vector<T>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    index: usize,
    value: T,
) -> Info {
    check_index(index, out.size())?;
    let merged = match (accum, out.get(index)) {
        (Some(op), Some(old)) => op.apply(old, value),
        _ => value,
    };
    out.set(index, merged)
}

/// `out<mask>(indices) ⊙= u` (`GrB_Vector_assign`): scatter `u[k]` into
/// `out[indices[k]]`.
pub fn assign_subvector<T: Scalar>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    u: &Vector<T>,
    indices: &[usize],
    desc: Descriptor,
) -> Info {
    check_dims("u size vs index count", indices.len(), u.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }
    for &i in indices {
        check_index(i, out.size())?;
    }
    // Scatter u through the index map into output coordinates.
    let mut scattered: Vec<(usize, T)> = u
        .iter()
        .map(|(k, v)| (indices[k], v))
        .collect();
    scattered.sort_unstable_by_key(|&(i, _)| i);
    let mut t = SparseVec::with_capacity(scattered.len());
    for (i, v) in scattered {
        // Last write wins on duplicate targets, like the C API's
        // "undefined but deterministic here" behaviour.
        if t.indices.last() == Some(&i) {
            *t.values.last_mut().expect("parallel") = v;
        } else {
            t.push(i, v);
        }
    }
    write_assign(out, t, mask, accum, indices, desc);
    Ok(())
}

/// `out<mask>(indices) ⊙= value` (`GrB_Vector_assign` with a scalar): set
/// every listed position to `value`. Pass `0..n` via `all_indices` helpers
/// to fill the whole vector — e.g. the `t = ∞` initialization of Fig. 1.
pub fn assign_vector_constant<T: Scalar>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    value: T,
    indices: &[usize],
    desc: Descriptor,
) -> Info {
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }
    let mut sorted: Vec<usize> = indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut t = SparseVec::with_capacity(sorted.len());
    for &i in &sorted {
        check_index(i, out.size())?;
        t.push(i, value);
    }
    write_assign(out, t, mask, accum, indices, desc);
    Ok(())
}

/// Shared tail of the assign family: inside the assigned region apply the
/// accumulator and mask as usual; outside it, keep the old contents.
fn write_assign<T: Scalar>(
    out: &mut Vector<T>,
    t: SparseVec<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    indices: &[usize],
    desc: Descriptor,
) {
    // Region membership, sorted.
    let mut region: Vec<usize> = indices.to_vec();
    region.sort_unstable();
    region.dedup();

    // Z inside the region: accumulate with the old values there.
    let z_in = match accum {
        None => t,
        Some(op) => {
            // Old entries restricted to the region.
            let mut old_in = SparseVec::with_capacity(region.len());
            for &i in &region {
                if let Some(v) = out.get(i) {
                    old_in.push(i, v);
                }
            }
            union_merge(
                &old_in.indices,
                &old_in.values,
                &t.indices,
                &t.values,
                |old| old,
                |new| new,
                |old, new| op.apply(old, new),
            )
        }
    };

    // Old entries outside the region always survive (assign semantics).
    let (old_idx, old_val) = out.take_data();
    let mut out_of_region = SparseVec::with_capacity(old_idx.len());
    for (&i, &v) in old_idx.iter().zip(old_val.iter()) {
        if region.binary_search(&i).is_err() {
            out_of_region.push(i, v);
        }
    }
    let z = union_merge(
        &out_of_region.indices,
        &out_of_region.values,
        &z_in.indices,
        &z_in.values,
        |old| old,
        |new| new,
        |_old, new| new,
    );
    // Restore old contents so the masked write can consult them, then write.
    out.replace_data(old_idx, old_val);
    mask_write_vector(out, z, mask, desc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    #[test]
    fn assign_element_with_and_without_accum() {
        let mut v = Vector::from_entries(4, vec![(0, 10)]).unwrap();
        assign_element(&mut v, None, 0, 5).unwrap();
        assert_eq!(v.get(0), Some(5));
        assign_element(&mut v, Some(&Plus::<i32>::new()), 0, 3).unwrap();
        assert_eq!(v.get(0), Some(8));
        assign_element(&mut v, Some(&Plus::<i32>::new()), 1, 7).unwrap();
        assert_eq!(v.get(1), Some(7)); // no old value: plain set
    }

    #[test]
    fn assign_subvector_scatters() {
        let mut out = Vector::from_entries(6, vec![(0, 100), (5, 500)]).unwrap();
        let u = Vector::from_entries(2, vec![(0, 1), (1, 2)]).unwrap();
        assign_subvector(&mut out, None, None, &u, &[3, 4], Descriptor::new()).unwrap();
        assert_eq!(out.get(3), Some(1));
        assert_eq!(out.get(4), Some(2));
        // Outside the region: untouched.
        assert_eq!(out.get(0), Some(100));
        assert_eq!(out.get(5), Some(500));
    }

    #[test]
    fn assign_inside_region_absent_source_deletes() {
        // u[1] is absent, so out[4] (inside the region) is deleted.
        let mut out = Vector::from_entries(6, vec![(4, 9)]).unwrap();
        let u = Vector::from_entries(2, vec![(0, 1)]).unwrap();
        assign_subvector(&mut out, None, None, &u, &[3, 4], Descriptor::new()).unwrap();
        assert_eq!(out.get(3), Some(1));
        assert_eq!(out.get(4), None);
    }

    #[test]
    fn assign_constant_fills_region() {
        let mut out: Vector<f64> = Vector::new(5);
        let all: Vec<usize> = (0..5).collect();
        assign_vector_constant(&mut out, None, None, f64::INFINITY, &all, Descriptor::new())
            .unwrap();
        assert_eq!(out.nvals(), 5);
        assert_eq!(out.get(3), Some(f64::INFINITY));
    }

    #[test]
    fn assign_constant_with_accum() {
        let mut out = Vector::from_entries(4, vec![(1, 10)]).unwrap();
        assign_vector_constant(
            &mut out,
            None,
            Some(&Plus::<i32>::new()),
            1,
            &[1, 2],
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(1), Some(11));
        assert_eq!(out.get(2), Some(1));
    }

    #[test]
    fn assign_with_mask() {
        let mut out: Vector<i32> = Vector::new(4);
        let mask_v = Vector::from_entries(4, vec![(2, true)]).unwrap();
        assign_vector_constant(
            &mut out,
            Some(&mask_v.mask()),
            None,
            7,
            &[1, 2, 3],
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(1), None); // blocked
        assert_eq!(out.get(2), Some(7)); // allowed
        assert_eq!(out.get(3), None);
    }

    #[test]
    fn assign_bounds_checked() {
        let mut out: Vector<i32> = Vector::new(3);
        assert!(assign_vector_constant(&mut out, None, None, 1, &[5], Descriptor::new()).is_err());
        let u = Vector::from_entries(2, vec![(0, 1)]).unwrap();
        assert!(assign_subvector(&mut out, None, None, &u, &[0], Descriptor::new()).is_err());
    }
}
