//! `GrB_mxm`: sparse matrix × sparse matrix over a semiring, using
//! Gustavson's row-wise algorithm with a dense accumulator.
//!
//! Needed for edge-centric patterns like the k-truss computation the paper
//! cites in Sec. II-C (`S = A^T A ∘ A`), where the Hadamard mask removes
//! fill-in.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::MatrixMask;
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::semiring::Semiring;
use crate::ops::transpose::transpose;
use crate::ops::write::{accum_merge_matrix, mask_write_matrix, SparseMat};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= A ⊕.⊗ B` (`GrB_mxm`).
///
/// With `desc.transpose_a` / `desc.transpose_b` the corresponding input is
/// transposed first (materialized; O(nnz)).
pub fn mxm<AD, BD, C, S>(
    out: &mut Matrix<C>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    semiring: &S,
    a: &Matrix<AD>,
    b: &Matrix<BD>,
    desc: Descriptor,
) -> Info
where
    AD: Scalar,
    BD: Scalar,
    C: Scalar,
    S: Semiring<AD, BD, C>,
{
    if desc.transpose_a {
        let at = transpose(a);
        let inner = Descriptor {
            transpose_a: false,
            ..desc
        };
        return mxm(out, mask, accum, semiring, &at, b, inner);
    }
    if desc.transpose_b {
        let bt = transpose(b);
        let inner = Descriptor {
            transpose_b: false,
            ..desc
        };
        return mxm(out, mask, accum, semiring, a, &bt, inner);
    }
    check_dims("inner (A.ncols vs B.nrows)", a.ncols(), b.nrows())?;
    check_dims("out nrows", out.nrows(), a.nrows())?;
    check_dims("out ncols", out.ncols(), b.ncols())?;
    if let Some(m) = mask {
        check_dims("mask nrows", out.nrows(), m.nrows())?;
        check_dims("mask ncols", out.ncols(), m.ncols())?;
    }

    let add = semiring.add();
    let mul = semiring.mul();
    let ncols = b.ncols();
    let mut t = SparseMat::empty(a.nrows(), ncols);
    // Gustavson: per output row, scatter partial products into a dense
    // accumulator, then compress the touched positions.
    let mut acc: Vec<C> = vec![add.identity(); ncols];
    let mut present = vec![false; ncols];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        touched.clear();
        let (acols, avals) = a.row(i);
        for (&k, &av) in acols.iter().zip(avals.iter()) {
            let (bcols, bvals) = b.row(k);
            for (&j, &bv) in bcols.iter().zip(bvals.iter()) {
                let prod = mul.apply(av, bv);
                if present[j] {
                    acc[j] = add.apply(acc[j], prod);
                } else {
                    acc[j] = prod;
                    present[j] = true;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            t.col_idx.push(j);
            t.values.push(acc[j]);
            present[j] = false;
        }
        t.row_ptr[i + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

/// Convenience: `out = diag(v)`, a square matrix with `v`'s entries on the
/// diagonal (`GrB_Matrix_diag`). Useful for building selector matrices
/// (Sec. II-E's alternative filtering approach).
pub fn diag<T: Scalar>(v: &Vector<T>) -> Matrix<T> {
    let triples = v.iter().map(|(i, val)| (i, i, val)).collect();
    Matrix::from_triples(v.size(), v.size(), triples)
        .expect("diagonal indices are in bounds by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ewise::ewise_mult_matrix;
    use crate::ops::semiring::{plus_pair, plus_times};

    #[test]
    fn mxm_plus_times_small() {
        // [1 2] [5 6]   [19 22]
        // [3 4] [7 8] = [43 50]
        let a = Matrix::from_dense(&[
            vec![Some(1.0), Some(2.0)],
            vec![Some(3.0), Some(4.0)],
        ])
        .unwrap();
        let b = Matrix::from_dense(&[
            vec![Some(5.0), Some(6.0)],
            vec![Some(7.0), Some(8.0)],
        ])
        .unwrap();
        let mut c: Matrix<f64> = Matrix::new(2, 2);
        mxm(&mut c, None, None, &plus_times::<f64>(), &a, &b, Descriptor::new()).unwrap();
        assert_eq!(c.get(0, 0), Some(19.0));
        assert_eq!(c.get(0, 1), Some(22.0));
        assert_eq!(c.get(1, 0), Some(43.0));
        assert_eq!(c.get(1, 1), Some(50.0));
    }

    #[test]
    fn mxm_sparse_no_fill_where_structurally_zero() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1.0)]).unwrap();
        let b = Matrix::from_triples(2, 2, vec![(1, 1, 1.0)]).unwrap();
        let mut c: Matrix<f64> = Matrix::new(2, 2);
        mxm(&mut c, None, None, &plus_times::<f64>(), &a, &b, Descriptor::new()).unwrap();
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn ktruss_support_pattern() {
        // Sec. II-C: S = (A^T A) ∘ A — triangle support per edge of an
        // undirected triangle graph 0-1-2.
        let edges = vec![
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (0, 2, 1.0),
            (2, 0, 1.0),
        ];
        let a = Matrix::from_triples(3, 3, edges).unwrap();
        let mut ata: Matrix<u64> = Matrix::new(3, 3);
        mxm(
            &mut ata,
            None,
            None,
            &plus_pair::<f64, u64>(),
            &a,
            &a,
            Descriptor::new().with_transpose_a(),
        )
        .unwrap();
        // Hadamard with A's structure removes fill-in (e.g. the diagonal).
        let mut s: Matrix<u64> = Matrix::new(3, 3);
        ewise_mult_matrix(
            &mut s,
            None,
            None,
            &crate::ops::binary::First::<u64, f64>::new(),
            &ata,
            &a,
            Descriptor::new(),
        )
        .unwrap();
        // Every edge of a triangle has support 1 (one common neighbour).
        assert_eq!(s.nvals(), 6);
        for (_, _, v) in s.iter() {
            assert_eq!(v, 1);
        }
        assert_eq!(s.get(0, 0), None); // fill-in removed
    }

    #[test]
    fn mxm_with_mask() {
        let a = Matrix::from_dense(&[
            vec![Some(1.0), Some(1.0)],
            vec![Some(1.0), Some(1.0)],
        ])
        .unwrap();
        let mask_m = Matrix::from_triples(2, 2, vec![(0, 0, true), (1, 1, true)]).unwrap();
        let mut c: Matrix<f64> = Matrix::new(2, 2);
        mxm(
            &mut c,
            Some(&mask_m.mask()),
            None,
            &plus_times::<f64>(),
            &a,
            &a,
            Descriptor::replace(),
        )
        .unwrap();
        assert_eq!(c.nvals(), 2);
        assert_eq!(c.get(0, 0), Some(2.0));
        assert_eq!(c.get(0, 1), None);
    }

    #[test]
    fn mxm_dimension_checks() {
        let a: Matrix<f64> = Matrix::new(2, 3);
        let b: Matrix<f64> = Matrix::new(2, 2); // inner mismatch
        let mut c: Matrix<f64> = Matrix::new(2, 2);
        assert!(mxm(&mut c, None, None, &plus_times::<f64>(), &a, &b, Descriptor::new()).is_err());
    }

    #[test]
    fn diag_builds_selector() {
        let v = Vector::from_entries(3, vec![(0, 2.0), (2, 3.0)]).unwrap();
        let d = diag(&v);
        assert_eq!(d.get(0, 0), Some(2.0));
        assert_eq!(d.get(2, 2), Some(3.0));
        assert_eq!(d.nvals(), 2);
        // Left-multiplying by diag(v) scales rows: selector-matrix filtering.
        let a = Matrix::from_dense(&[
            vec![Some(1.0), Some(1.0)],
            vec![Some(1.0), Some(1.0)],
            vec![Some(1.0), None],
        ])
        .unwrap();
        let mut out: Matrix<f64> = Matrix::new(3, 2);
        mxm(&mut out, None, None, &plus_times::<f64>(), &d, &a, Descriptor::new()).unwrap();
        assert_eq!(out.get(0, 0), Some(2.0));
        assert_eq!(out.get(1, 0), None); // row 1 deselected
        assert_eq!(out.get(2, 0), Some(3.0));
    }
}
