//! `GrB_extract`: gather a sub-vector or sub-matrix by index lists, and
//! `GrB_Vector_extractElement`.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, check_index, GblasError, Info};
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::write::{
    accum_merge, accum_merge_matrix, mask_write_matrix, mask_write_vector, SparseMat, SparseVec,
};
use crate::types::Scalar;
use crate::vector::Vector;

/// Read one stored element, `GrB_NO_VALUE` if absent
/// (`GrB_Vector_extractElement`).
pub fn extract_element<T: Scalar>(v: &Vector<T>, index: usize) -> Info<T> {
    check_index(index, v.size())?;
    v.get(index).ok_or(GblasError::NoValue)
}

/// `out<mask> ⊙= u(indices)` (`GrB_Vector_extract`): `out[k] = u[indices[k]]`
/// for each `k`; absent source positions stay absent.
pub fn extract_subvector<T: Scalar>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    u: &Vector<T>,
    indices: &[usize],
    desc: Descriptor,
) -> Info {
    check_dims("out size vs index count", indices.len(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }
    let mut entries: Vec<(usize, T)> = Vec::new();
    for (k, &i) in indices.iter().enumerate() {
        check_index(i, u.size())?;
        if let Some(val) = u.get(i) {
            entries.push((k, val));
        }
    }
    entries.sort_unstable_by_key(|&(k, _)| k);
    let mut t = SparseVec::with_capacity(entries.len());
    for (k, val) in entries {
        t.push(k, val);
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// `out<mask> ⊙= A(rows, cols)` (`GrB_Matrix_extract`):
/// `out[i][j] = A[rows[i]][cols[j]]`.
pub fn extract_submatrix<T: Scalar>(
    out: &mut Matrix<T>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    a: &Matrix<T>,
    rows: &[usize],
    cols: &[usize],
    desc: Descriptor,
) -> Info {
    check_dims("out nrows vs row count", rows.len(), out.nrows())?;
    check_dims("out ncols vs col count", cols.len(), out.ncols())?;
    if let Some(m) = mask {
        check_dims("mask nrows", out.nrows(), m.nrows())?;
        check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    for &r in rows {
        check_index(r, a.nrows())?;
    }
    // Inverse column map: source column -> output positions (a column may be
    // selected more than once).
    let mut col_map: Vec<Vec<usize>> = vec![Vec::new(); a.ncols()];
    for (j, &c) in cols.iter().enumerate() {
        check_index(c, a.ncols())?;
        col_map[c].push(j);
    }
    let mut t = SparseMat::empty(rows.len(), cols.len());
    let mut row_entries: Vec<(usize, T)> = Vec::new();
    for (i, &r) in rows.iter().enumerate() {
        row_entries.clear();
        let (rcols, rvals) = a.row(r);
        for (&c, &v) in rcols.iter().zip(rvals.iter()) {
            for &j in &col_map[c] {
                row_entries.push((j, v));
            }
        }
        row_entries.sort_unstable_by_key(|&(j, _)| j);
        for &(j, v) in &row_entries {
            t.col_idx.push(j);
            t.values.push(v);
        }
        t.row_ptr[i + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_element_present_and_absent() {
        let v = Vector::from_entries(4, vec![(1, 5.0)]).unwrap();
        assert_eq!(extract_element(&v, 1).unwrap(), 5.0);
        assert_eq!(extract_element(&v, 2), Err(GblasError::NoValue));
        assert!(matches!(
            extract_element(&v, 9),
            Err(GblasError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn extract_subvector_gathers() {
        let u = Vector::from_entries(6, vec![(0, 10), (2, 20), (5, 50)]).unwrap();
        let mut out = Vector::new(3);
        extract_subvector(&mut out, None, None, &u, &[5, 1, 2], Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(50));
        assert_eq!(out.get(1), None); // u[1] absent
        assert_eq!(out.get(2), Some(20));
    }

    #[test]
    fn extract_subvector_checks() {
        let u: Vector<i32> = Vector::new(3);
        let mut out: Vector<i32> = Vector::new(2);
        assert!(extract_subvector(&mut out, None, None, &u, &[0], Descriptor::new()).is_err());
        assert!(extract_subvector(&mut out, None, None, &u, &[0, 7], Descriptor::new()).is_err());
    }

    #[test]
    fn extract_submatrix_reorders() {
        let a = Matrix::from_triples(3, 3, vec![(0, 0, 1), (1, 1, 2), (2, 2, 3), (0, 2, 4)])
            .unwrap();
        let mut out: Matrix<i32> = Matrix::new(2, 2);
        // Select rows [2,0], cols [2,0]: a permuted corner.
        extract_submatrix(&mut out, None, None, &a, &[2, 0], &[2, 0], Descriptor::new()).unwrap();
        assert_eq!(out.get(0, 0), Some(3)); // a[2][2]
        assert_eq!(out.get(1, 1), Some(1)); // a[0][0]
        assert_eq!(out.get(1, 0), Some(4)); // a[0][2]
        assert_eq!(out.get(0, 1), None); // a[2][0] absent
        out.check_invariants().unwrap();
    }

    #[test]
    fn extract_submatrix_duplicate_columns() {
        let a = Matrix::from_triples(1, 2, vec![(0, 1, 9)]).unwrap();
        let mut out: Matrix<i32> = Matrix::new(1, 3);
        extract_submatrix(&mut out, None, None, &a, &[0], &[1, 1, 0], Descriptor::new()).unwrap();
        assert_eq!(out.get(0, 0), Some(9));
        assert_eq!(out.get(0, 1), Some(9));
        assert_eq!(out.get(0, 2), None);
    }
}
