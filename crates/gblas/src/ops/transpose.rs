//! `GrB_transpose`: materialize the transpose of a CSR matrix with a
//! counting sort — O(nnz + nrows + ncols), output rows sorted by
//! construction.

use crate::matrix::Matrix;
use crate::types::Scalar;

/// Return `Aᵀ`.
pub fn transpose<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let nrows = a.nrows();
    let ncols = a.ncols();
    let nnz = a.nvals();
    // Count entries per output row (= input column).
    let mut row_ptr = vec![0usize; ncols + 1];
    for &c in a.col_indices() {
        row_ptr[c + 1] += 1;
    }
    for i in 0..ncols {
        row_ptr[i + 1] += row_ptr[i];
    }
    // Scatter; input is scanned in row-major order, so each output row
    // receives its column indices (= input rows) in ascending order.
    let mut cursor = row_ptr.clone();
    let mut col_idx = vec![0usize; nnz];
    let mut values: Vec<T> = Vec::with_capacity(nnz);
    // SAFETY-free approach: fill values via placeholder then overwrite.
    // Instead, collect triples positionally.
    let mut slots: Vec<Option<T>> = vec![None; nnz];
    for r in 0..nrows {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            let p = cursor[c];
            cursor[c] += 1;
            col_idx[p] = r;
            slots[p] = Some(v);
        }
    }
    values.extend(slots.into_iter().map(|s| s.expect("every slot filled")));
    Matrix::from_csr_unchecked(ncols, nrows, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_rectangular() {
        let a = Matrix::from_triples(2, 3, vec![(0, 1, 10), (0, 2, 20), (1, 0, 30)]).unwrap();
        let at = transpose(&a);
        assert_eq!(at.nrows(), 3);
        assert_eq!(at.ncols(), 2);
        assert_eq!(at.get(1, 0), Some(10));
        assert_eq!(at.get(2, 0), Some(20));
        assert_eq!(at.get(0, 1), Some(30));
        assert_eq!(at.nvals(), 3);
        at.check_invariants().unwrap();
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_triples(
            4,
            4,
            vec![(0, 1, 1.0), (1, 3, 2.0), (2, 0, 3.0), (3, 3, 4.0)],
        )
        .unwrap();
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_empty() {
        let a: Matrix<f64> = Matrix::new(3, 5);
        let at = transpose(&a);
        assert_eq!(at.nrows(), 5);
        assert_eq!(at.ncols(), 3);
        assert_eq!(at.nvals(), 0);
        at.check_invariants().unwrap();
    }

    #[test]
    fn transpose_preserves_dense_semantics() {
        let a = Matrix::from_dense(&[
            vec![Some(1), None, Some(3)],
            vec![None, Some(5), None],
        ])
        .unwrap();
        let at = transpose(&a);
        let dense = at.to_dense();
        for (c, row) in dense.iter().enumerate() {
            for (r, cell) in row.iter().enumerate() {
                assert_eq!(*cell, a.get(r, c));
            }
        }
    }
}
