//! `GrB_vxm`: sparse row-vector × matrix over a semiring.
//!
//! This is the relaxation engine of the paper: with CSR storage, `u ⊕.⊗ A`
//! iterates the rows of `A` selected by `u`'s stored entries — exactly the
//! "for every vertex in the bucket, relax its outgoing edges" loop. Over
//! `(min, +)` it computes `t_Req = A_L^T (t ∘ t_Bi)` (Fig. 2 lines 43, 60)
//! without an explicit transpose.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::semiring::Semiring;
use crate::ops::transpose::transpose;
use crate::ops::write::{accum_merge, mask_write_vector, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= u ⊕.⊗ A` (`GrB_vxm`).
///
/// `u` has size `A.nrows()`; `out` has size `A.ncols()`. With
/// `desc.transpose_a`, `A` is transposed first (materialized; O(nnz)).
pub fn vxm<UD, MD, C, S>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    semiring: &S,
    u: &Vector<UD>,
    a: &Matrix<MD>,
    desc: Descriptor,
) -> Info
where
    UD: Scalar,
    MD: Scalar,
    C: Scalar,
    S: Semiring<UD, MD, C>,
{
    if desc.transpose_a {
        let at = transpose(a);
        let inner = Descriptor {
            transpose_a: false,
            ..desc
        };
        return vxm(out, mask, accum, semiring, u, &at, inner);
    }
    check_dims("u size vs nrows", a.nrows(), u.size())?;
    check_dims("out size vs ncols", a.ncols(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }

    let t = vxm_pattern(semiring, u, a);
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// The unmasked product `u ⊕.⊗ A` as a sparse payload; shared with the
/// parallel variant.
pub(crate) fn vxm_pattern<UD, MD, C, S>(semiring: &S, u: &Vector<UD>, a: &Matrix<MD>) -> SparseVec<C>
where
    UD: Scalar,
    MD: Scalar,
    C: Scalar,
    S: Semiring<UD, MD, C>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    // Dense accumulator over the output dimension: value + present bitmap.
    let mut acc: Vec<C> = vec![add.identity(); a.ncols()];
    let mut present: Vec<bool> = vec![false; a.ncols()];
    let mut touched: Vec<usize> = Vec::new();
    for (i, uv) in u.iter() {
        let (cols, vals) = a.row(i);
        for (&j, &av) in cols.iter().zip(vals.iter()) {
            let prod = mul.apply(uv, av);
            if present[j] {
                acc[j] = add.apply(acc[j], prod);
            } else {
                acc[j] = prod;
                present[j] = true;
                touched.push(j);
            }
        }
    }
    touched.sort_unstable();
    let mut t = SparseVec::with_capacity(touched.len());
    for j in touched {
        t.push(j, acc[j]);
    }
    t
}

/// `out<mask> ⊙= u ⊕.⊗ Aᵀᵀ` — the **pull-direction** counterpart of
/// [`vxm`], fed the *pre-transposed* operand.
///
/// `at` must be `transpose(a)` for the `a` the caller would have handed
/// to [`vxm`]; the caller owns the transpose so that a loop consuming
/// the same matrix every epoch (delta-stepping's `A_L`) materializes it
/// once instead of per call. Instead of iterating the rows of `a`
/// selected by `u` (push: scatter into a dense accumulator, then sort
/// the touched list), this scans every row `j` of `at` — the in-edges
/// of output position `j` — against a bitmap of `u`'s stored entries:
/// sequential reads, output produced in ascending order, no sort. The
/// direction to use is [`crate::direction::choose`]'s call, on frontier
/// density.
///
/// Equivalence caveat: push folds products in frontier order, pull folds
/// them per-output in ascending-source order. For order-insensitive
/// additive monoids (min/max/and/or — exactly the tropical case the SSSP
/// loops use) the result is **bit-identical** to [`vxm`]; for plain
/// floating `+` it is the usual reassociation-close, not bit-equal.
pub fn vxm_pull<UD, MD, C, S>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    semiring: &S,
    u: &Vector<UD>,
    at: &Matrix<MD>,
    desc: Descriptor,
) -> Info
where
    UD: Scalar,
    MD: Scalar,
    C: Scalar,
    S: Semiring<UD, MD, C>,
{
    // `at` is the transpose: its columns are `a`'s rows.
    check_dims("u size vs (transposed) nrows", at.ncols(), u.size())?;
    check_dims("out size vs (transposed) ncols", at.nrows(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }

    let t = vxm_pull_pattern(semiring, u, at);
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// The unmasked pull product: for each output `j`, fold the products of
/// `u`'s entries over the in-edges listed in row `j` of the transpose.
pub(crate) fn vxm_pull_pattern<UD, MD, C, S>(
    semiring: &S,
    u: &Vector<UD>,
    at: &Matrix<MD>,
) -> SparseVec<C>
where
    UD: Scalar,
    MD: Scalar,
    C: Scalar,
    S: Semiring<UD, MD, C>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    // Frontier bitmap + dense value gather over the input dimension.
    let mut in_u: Vec<bool> = vec![false; at.ncols()];
    let mut uvals: Vec<Option<UD>> = vec![None; at.ncols()];
    for (i, uv) in u.iter() {
        in_u[i] = true;
        uvals[i] = Some(uv);
    }
    let mut t = SparseVec::with_capacity(u.nvals());
    for j in 0..at.nrows() {
        let (srcs, vals) = at.row(j);
        let mut acc: Option<C> = None;
        for (&i, &av) in srcs.iter().zip(vals.iter()) {
            if !in_u[i] {
                continue;
            }
            let uv = uvals[i].expect("bitmap and value gather are set together");
            let prod = mul.apply(uv, av);
            acc = Some(match acc {
                None => prod,
                Some(cur) => add.apply(cur, prod),
            });
        }
        if let Some(v) = acc {
            // Ascending `j`: the payload is sorted by construction.
            t.push(j, v);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Min;
    use crate::ops::semiring::{min_plus_f64, plus_times};

    /// 4-vertex weighted digraph:
    /// 0->1 (1.0), 0->2 (4.0), 1->2 (2.0), 2->3 (1.0)
    fn graph() -> Matrix<f64> {
        Matrix::from_triples(
            4,
            4,
            vec![(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn min_plus_vxm_relaxes_frontier() {
        let a = graph();
        let mut t = Vector::new(4);
        t.set(0, 0.0).unwrap();
        let mut req = Vector::new(4);
        vxm(&mut req, None, None, &min_plus_f64(), &t, &a, Descriptor::new()).unwrap();
        assert_eq!(req.get(1), Some(1.0));
        assert_eq!(req.get(2), Some(4.0));
        assert_eq!(req.get(3), None); // not reachable in one hop
    }

    #[test]
    fn min_plus_vxm_takes_minimum_over_paths() {
        let a = graph();
        // Both 0 (dist 0) and 1 (dist 1) are in the frontier; vertex 2 is
        // reachable from both: min(0+4, 1+2) = 3.
        let u = Vector::from_entries(4, vec![(0, 0.0), (1, 1.0)]).unwrap();
        let mut req = Vector::new(4);
        vxm(&mut req, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        assert_eq!(req.get(2), Some(3.0));
    }

    #[test]
    fn plus_times_vxm_is_ordinary_spmv() {
        let a = Matrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let u = Vector::from_entries(2, vec![(0, 10.0), (1, 20.0)]).unwrap();
        let mut out = Vector::new(3);
        vxm(&mut out, None, None, &plus_times::<f64>(), &u, &a, Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(10.0));
        assert_eq!(out.get(1), Some(60.0));
        assert_eq!(out.get(2), Some(20.0));
    }

    #[test]
    fn vxm_with_accum_min_keeps_better_distance() {
        let a = graph();
        let u = Vector::from_entries(4, vec![(0, 0.0)]).unwrap();
        let mut out = Vector::from_entries(4, vec![(1, 0.5), (2, 9.0)]).unwrap();
        vxm(
            &mut out,
            None,
            Some(&Min::<f64>::new()),
            &min_plus_f64(),
            &u,
            &a,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(1), Some(0.5)); // old better
        assert_eq!(out.get(2), Some(4.0)); // new better
    }

    #[test]
    fn vxm_transpose_a() {
        let a = graph();
        // With transpose, u selects *columns*: u = e_1 picks in-edges of 1.
        let u = Vector::from_entries(4, vec![(1, 0.0)]).unwrap();
        let mut out = Vector::new(4);
        vxm(
            &mut out,
            None,
            None,
            &min_plus_f64(),
            &u,
            &a,
            Descriptor::new().with_transpose_a(),
        )
        .unwrap();
        assert_eq!(out.get(0), Some(1.0)); // edge 0->1 seen from the transpose
        assert_eq!(out.get(2), None);
    }

    #[test]
    fn vxm_dimension_checks() {
        let a = graph();
        let u: Vector<f64> = Vector::new(3); // wrong
        let mut out: Vector<f64> = Vector::new(4);
        assert!(vxm(&mut out, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).is_err());
        let u: Vector<f64> = Vector::new(4);
        let mut out: Vector<f64> = Vector::new(3); // wrong
        assert!(vxm(&mut out, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).is_err());
    }

    #[test]
    fn vxm_empty_u_yields_empty() {
        let a = graph();
        let u: Vector<f64> = Vector::new(4);
        let mut out = Vector::from_entries(4, vec![(0, 9.0)]).unwrap();
        vxm(&mut out, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
        assert_eq!(out.nvals(), 0); // unmasked write replaces contents
    }

    #[test]
    fn vxm_pull_matches_push_bit_for_bit_over_min_plus() {
        let a = graph();
        let at = transpose(&a);
        for entries in [
            vec![(0usize, 0.0f64)],
            vec![(0, 0.0), (1, 1.0)],
            vec![(0, 0.5), (1, 0.25), (2, 4.0)],
            vec![(3, 2.0)],
        ] {
            let u = Vector::from_entries(4, entries.clone()).unwrap();
            let mut push = Vector::new(4);
            vxm(&mut push, None, None, &min_plus_f64(), &u, &a, Descriptor::new()).unwrap();
            let mut pull = Vector::new(4);
            vxm_pull(&mut pull, None, None, &min_plus_f64(), &u, &at, Descriptor::new())
                .unwrap();
            let pu: Vec<(usize, u64)> = push.iter().map(|(i, v)| (i, v.to_bits())).collect();
            let pl: Vec<(usize, u64)> = pull.iter().map(|(i, v)| (i, v.to_bits())).collect();
            assert_eq!(pu, pl, "frontier {entries:?}");
        }
    }

    #[test]
    fn vxm_pull_respects_accum_and_empty_frontier() {
        let a = graph();
        let at = transpose(&a);
        let u = Vector::from_entries(4, vec![(0, 0.0)]).unwrap();
        let mut out = Vector::from_entries(4, vec![(1, 0.5), (2, 9.0)]).unwrap();
        vxm_pull(
            &mut out,
            None,
            Some(&Min::<f64>::new()),
            &min_plus_f64(),
            &u,
            &at,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(1), Some(0.5)); // old better
        assert_eq!(out.get(2), Some(4.0)); // new better

        let empty: Vector<f64> = Vector::new(4);
        let mut out = Vector::from_entries(4, vec![(0, 9.0)]).unwrap();
        vxm_pull(&mut out, None, None, &min_plus_f64(), &empty, &at, Descriptor::new()).unwrap();
        assert_eq!(out.nvals(), 0);
    }

    #[test]
    fn vxm_pull_dimension_checks_use_transposed_shape() {
        let a = Matrix::from_triples(2, 3, vec![(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let at = transpose(&a); // 3 x 2
        let u = Vector::from_entries(2, vec![(0, 0.0)]).unwrap();
        let mut out: Vector<f64> = Vector::new(3);
        assert!(vxm_pull(&mut out, None, None, &min_plus_f64(), &u, &at, Descriptor::new())
            .is_ok());
        let wrong_u: Vector<f64> = Vector::new(3);
        assert!(vxm_pull(&mut out, None, None, &min_plus_f64(), &wrong_u, &at, Descriptor::new())
            .is_err());
        let mut wrong_out: Vector<f64> = Vector::new(2);
        assert!(vxm_pull(&mut wrong_out, None, None, &min_plus_f64(), &u, &at, Descriptor::new())
            .is_err());
    }
}
