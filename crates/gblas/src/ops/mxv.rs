//! `GrB_mxv`: matrix × column-vector over a semiring.
//!
//! With CSR storage this is the *pull* direction: each output row gathers
//! over the intersection of its stored columns with `u`'s entries.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::semiring::Semiring;
use crate::ops::transpose::transpose;
use crate::ops::write::{accum_merge, mask_write_vector, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= A ⊕.⊗ u` (`GrB_mxv`).
///
/// `u` has size `A.ncols()`; `out` has size `A.nrows()`. With
/// `desc.transpose_a`, `A` is transposed first (materialized; O(nnz)).
pub fn mxv<MD, UD, C, S>(
    out: &mut Vector<C>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<C, C, C>>,
    semiring: &S,
    a: &Matrix<MD>,
    u: &Vector<UD>,
    desc: Descriptor,
) -> Info
where
    MD: Scalar,
    UD: Scalar,
    C: Scalar,
    S: Semiring<MD, UD, C>,
{
    if desc.transpose_a {
        let at = transpose(a);
        let inner = Descriptor {
            transpose_a: false,
            ..desc
        };
        return mxv(out, mask, accum, semiring, &at, u, inner);
    }
    check_dims("u size vs ncols", a.ncols(), u.size())?;
    check_dims("out size vs nrows", a.nrows(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }

    let add = semiring.add();
    let mul = semiring.mul();
    // Dense image of u for O(1) gather.
    let u_dense = u.to_dense();
    let mut t = SparseVec::with_capacity(a.nrows().min(64));
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut acc = add.identity();
        let mut any = false;
        for (&j, &av) in cols.iter().zip(vals.iter()) {
            if let Some(uv) = u_dense[j] {
                let prod = mul.apply(av, uv);
                acc = if any { add.apply(acc, prod) } else { prod };
                any = true;
            }
        }
        if any {
            t.push(i, acc);
        }
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::semiring::{min_plus_f64, plus_times};

    fn graph() -> Matrix<f64> {
        Matrix::from_triples(
            4,
            4,
            vec![(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn mxv_pull_direction() {
        // A x over (min,+): out[i] = min_j A[i,j] + x[j] — distances *to*
        // the frontier through out-edges.
        let a = graph();
        let x = Vector::from_entries(4, vec![(2, 0.0)]).unwrap();
        let mut out = Vector::new(4);
        mxv(&mut out, None, None, &min_plus_f64(), &a, &x, Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(4.0)); // 0 -> 2
        assert_eq!(out.get(1), Some(2.0)); // 1 -> 2
        assert_eq!(out.get(3), None);
    }

    #[test]
    fn mxv_equals_vxm_on_transpose() {
        let a = graph();
        let x = Vector::from_entries(4, vec![(0, 0.0), (1, 1.0)]).unwrap();
        let mut via_mxv = Vector::new(4);
        mxv(
            &mut via_mxv,
            None,
            None,
            &min_plus_f64(),
            &a,
            &x,
            Descriptor::new().with_transpose_a(),
        )
        .unwrap();
        let mut via_vxm = Vector::new(4);
        crate::ops::vxm::vxm(&mut via_vxm, None, None, &min_plus_f64(), &x, &a, Descriptor::new())
            .unwrap();
        assert_eq!(via_mxv, via_vxm);
    }

    #[test]
    fn mxv_plus_times() {
        let a = Matrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let x = Vector::from_entries(3, vec![(0, 1.0), (1, 1.0), (2, 1.0)]).unwrap();
        let mut out = Vector::new(2);
        mxv(&mut out, None, None, &plus_times::<f64>(), &a, &x, Descriptor::new()).unwrap();
        assert_eq!(out.get(0), Some(3.0));
        assert_eq!(out.get(1), Some(3.0));
    }

    #[test]
    fn mxv_dimension_checks() {
        let a = graph();
        let x: Vector<f64> = Vector::new(3);
        let mut out: Vector<f64> = Vector::new(4);
        assert!(mxv(&mut out, None, None, &min_plus_f64(), &a, &x, Descriptor::new()).is_err());
    }
}
