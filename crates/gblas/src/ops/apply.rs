//! `GrB_apply`: apply a unary operator to every stored entry.
//!
//! Fig. 2 uses this operation more than any other — every filter is a pair
//! of `GrB_apply` calls, first to evaluate the predicate, then to use the
//! predicate's output as a mask (Sec. V-A).

use crate::descriptor::Descriptor;
use crate::error::Info;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::unary::UnaryOp;
use crate::ops::write::{
    accum_merge, accum_merge_matrix, mask_write_matrix, mask_write_vector, SparseMat, SparseVec,
};
use crate::types::Scalar;
use crate::vector::Vector;

/// `out<mask> ⊙= op(input)` for vectors (`GrB_Vector_apply`).
///
/// The intermediate result has exactly `input`'s pattern; the mask and
/// `desc.replace` then control which positions reach `out`.
pub fn vector_apply<A, B, Op>(
    out: &mut Vector<B>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<B, B, B>>,
    op: &Op,
    input: &Vector<A>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    Op: UnaryOp<A, B> + ?Sized,
{
    out.check_same_size(input.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let mut t = SparseVec::with_capacity(input.nvals());
    for (i, v) in input.iter() {
        t.push(i, op.apply(v));
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// `out<mask> ⊙= op(input)` for matrices (`GrB_Matrix_apply`).
///
/// Fig. 2 lines 15–21 build `A_L` and `A_H` with two matrix applies each:
/// one evaluating the threshold predicate, one writing `A` through that
/// result as a mask.
pub fn matrix_apply<A, B, Op>(
    out: &mut Matrix<B>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<B, B, B>>,
    op: &Op,
    input: &Matrix<A>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    Op: UnaryOp<A, B> + ?Sized,
{
    crate::error::check_dims("nrows", out.nrows(), input.nrows())?;
    crate::error::check_dims("ncols", out.ncols(), input.ncols())?;
    if let Some(m) = mask {
        crate::error::check_dims("mask nrows", out.nrows(), m.nrows())?;
        crate::error::check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    let mut t = SparseMat::empty(input.nrows(), input.ncols());
    for r in 0..input.nrows() {
        let (cols, vals) = input.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            t.col_idx.push(c);
            t.values.push(op.apply(v));
        }
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::unary::{FnUnary, Identity};

    #[test]
    fn vector_apply_plain() {
        let input = Vector::from_entries(5, vec![(1, 2.0), (3, 4.0)]).unwrap();
        let mut out = Vector::new(5);
        vector_apply(
            &mut out,
            None,
            None,
            &FnUnary::new(|x: f64| x * 10.0),
            &input,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(1), Some(20.0));
        assert_eq!(out.get(3), Some(40.0));
        assert_eq!(out.nvals(), 2);
    }

    #[test]
    fn vector_apply_size_mismatch() {
        let input: Vector<f64> = Vector::new(5);
        let mut out: Vector<f64> = Vector::new(4);
        let r = vector_apply(
            &mut out,
            None,
            None,
            &Identity::<f64>::new(),
            &input,
            Descriptor::new(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn vector_apply_predicate_then_mask_idiom() {
        // The Fig. 2 filter idiom: first apply the predicate, then use the
        // result as a mask to keep only positions where it held.
        let delta = 2.0f64;
        let t = Vector::from_entries(5, vec![(0, 1.0), (1, 2.5), (2, 3.0), (4, 0.5)]).unwrap();
        // Step 1: tb = (t <= delta) — a full-pattern boolean vector.
        let mut tb: Vector<bool> = Vector::new(5);
        vector_apply(
            &mut tb,
            None,
            None,
            &FnUnary::new(move |x: f64| x <= delta),
            &t,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(tb.nvals(), 4); // false entries are *stored* — the pitfall
        // Step 2: tmasked<tb,replace> = identity(t) keeps only true ones.
        let mut tmasked: Vector<f64> = Vector::new(5);
        vector_apply(
            &mut tmasked,
            Some(&tb.mask()),
            None,
            &Identity::<f64>::new(),
            &t,
            Descriptor::replace(),
        )
        .unwrap();
        assert_eq!(tmasked.nvals(), 2);
        assert_eq!(tmasked.get(0), Some(1.0));
        assert_eq!(tmasked.get(4), Some(0.5));
        assert_eq!(tmasked.get(1), None);
    }

    #[test]
    fn vector_apply_with_accum() {
        let input = Vector::from_entries(3, vec![(0, 1), (1, 2)]).unwrap();
        let mut out = Vector::from_entries(3, vec![(1, 10), (2, 20)]).unwrap();
        vector_apply(
            &mut out,
            None,
            Some(&Plus::<i32>::new()),
            &Identity::<i32>::new(),
            &input,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(out.get(0), Some(1));
        assert_eq!(out.get(1), Some(12));
        assert_eq!(out.get(2), Some(20));
    }

    #[test]
    fn matrix_apply_threshold_filter() {
        // A_L = A .* (0 < A <= delta), the Fig. 2 lines 15-17 idiom.
        let delta = 1.5f64;
        let a = Matrix::from_triples(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 0.5), (1, 1, 3.0)],
        )
        .unwrap();
        let mut ab: Matrix<bool> = Matrix::new(2, 2);
        matrix_apply(
            &mut ab,
            None,
            None,
            &FnUnary::new(move |x: f64| x > 0.0 && x <= delta),
            &a,
            Descriptor::new(),
        )
        .unwrap();
        let mut al: Matrix<f64> = Matrix::new(2, 2);
        matrix_apply(
            &mut al,
            Some(&ab.mask()),
            None,
            &Identity::<f64>::new(),
            &a,
            Descriptor::replace(),
        )
        .unwrap();
        assert_eq!(al.get(0, 0), Some(1.0));
        assert_eq!(al.get(1, 0), Some(0.5));
        assert_eq!(al.get(0, 1), None);
        assert_eq!(al.get(1, 1), None);
        al.check_invariants().unwrap();
    }

    #[test]
    fn matrix_apply_dimension_check() {
        let a: Matrix<f64> = Matrix::new(2, 3);
        let mut out: Matrix<f64> = Matrix::new(3, 2);
        assert!(matrix_apply(
            &mut out,
            None,
            None,
            &Identity::<f64>::new(),
            &a,
            Descriptor::new()
        )
        .is_err());
    }
}
