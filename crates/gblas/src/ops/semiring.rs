//! Semirings (`GrB_Semiring`): an additive monoid paired with a
//! multiplicative binary operator, driving `vxm`/`mxv`/`mxm`.
//!
//! The star of the paper is the tropical `(min, +)` semiring
//! ([`min_plus_f64`] and friends), which turns sparse matrix–vector
//! multiplication into simultaneous edge relaxation (Sec. IV-C).

use crate::ops::binary::{BinaryOp, First, LAnd, Pair, PlusSat, Second, Times};
use crate::ops::monoid::{self, CommutativeMonoid, Monoid};
use crate::types::{MinPlusValue, Num};

/// A semiring `(⊕, ⊗)` with `⊕` a commutative monoid over the output domain
/// `C` and `⊗ : (A, B) -> C`.
pub trait Semiring<A, B, C>: Send + Sync {
    /// The additive monoid.
    type Add: Monoid<C>;
    /// The multiplicative operator.
    type Mul: BinaryOp<A, B, C>;

    /// Access the additive monoid.
    fn add(&self) -> &Self::Add;
    /// Access the multiplicative operator.
    fn mul(&self) -> &Self::Mul;
}

/// A semiring assembled from parts (`GrB_Semiring_new`).
#[derive(Debug, Clone, Copy)]
pub struct SemiringPair<AddM, MulOp> {
    add: AddM,
    mul: MulOp,
}

impl<AddM, MulOp> SemiringPair<AddM, MulOp> {
    /// Pair an additive monoid with a multiplicative operator.
    pub fn new(add: AddM, mul: MulOp) -> Self {
        SemiringPair { add, mul }
    }
}

impl<A, B, C, AddM, MulOp> Semiring<A, B, C> for SemiringPair<AddM, MulOp>
where
    AddM: Monoid<C>,
    MulOp: BinaryOp<A, B, C>,
{
    type Add = AddM;
    type Mul = MulOp;

    #[inline]
    fn add(&self) -> &AddM {
        &self.add
    }
    #[inline]
    fn mul(&self) -> &MulOp {
        &self.mul
    }
}

/// The type of [`min_plus`] semirings.
pub type MinPlusSemiring<T> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Min<T>, T>, PlusSat<T>>;

/// The tropical `(min, +)` semiring over any distance type: `⊕ = min` with
/// identity `∞`, `⊗ =` saturating/IEEE addition. The paper's
/// `min_plus_sring`.
pub fn min_plus<T: MinPlusValue>() -> MinPlusSemiring<T> {
    SemiringPair::new(
        CommutativeMonoid::new(crate::ops::binary::Min::new(), T::infinity()),
        PlusSat::new(),
    )
}

/// `(min, +)` over `f64` — the semiring of Fig. 2's `GrB_vxm` calls.
pub fn min_plus_f64() -> MinPlusSemiring<f64> {
    min_plus()
}

/// `(min, +)` over `f32`.
pub fn min_plus_f32() -> MinPlusSemiring<f32> {
    min_plus()
}

/// `(min, +)` over `i64` (saturating weight addition).
pub fn min_plus_i64() -> MinPlusSemiring<i64> {
    min_plus()
}

/// The type of [`plus_times`] semirings.
pub type PlusTimesSemiring<T> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Plus<T>, T>, Times<T>>;

/// The conventional arithmetic `(+, ×)` semiring.
pub fn plus_times<T: Num>() -> PlusTimesSemiring<T> {
    SemiringPair::new(monoid::plus(), Times::new())
}

/// The type of [`plus_pair`] semirings.
pub type PlusPairSemiring<A, C> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Plus<C>, C>, Pair<A, A, C>>;

/// The structural counting semiring `(+, pair)`: each structural match adds
/// one — used e.g. in triangle counting / k-truss (Sec. II-C).
pub fn plus_pair<A: Send + Sync, C: Num>() -> PlusPairSemiring<A, C> {
    SemiringPair::new(monoid::plus(), Pair::new())
}

/// The type of [`lor_land`] semirings.
pub type LorLandSemiring = SemiringPair<CommutativeMonoid<crate::ops::binary::LOr, bool>, LAnd>;

/// The boolean `(∨, ∧)` semiring for reachability (BFS frontier expansion).
pub fn lor_land() -> LorLandSemiring {
    SemiringPair::new(monoid::lor(), LAnd)
}

/// The type of [`min_first`] semirings.
pub type MinFirstSemiring<T> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Min<T>, T>, First<T, T>>;

/// `(min, first)`: propagate the vector value along structure, keeping the
/// minimum — useful for label propagation / parent selection.
pub fn min_first<T: Num>() -> MinFirstSemiring<T> {
    SemiringPair::new(monoid::min(), First::new())
}

/// The type of [`min_second`] semirings.
pub type MinSecondSemiring<T> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Min<T>, T>, Second<T, T>>;

/// `(min, second)`: propagate the matrix value, keeping the minimum.
pub fn min_second<T: Num>() -> MinSecondSemiring<T> {
    SemiringPair::new(monoid::min(), Second::new())
}

/// The type of [`max_times`] semirings.
pub type MaxTimesSemiring<T> =
    SemiringPair<CommutativeMonoid<crate::ops::binary::Max<T>, T>, Times<T>>;

/// `(max, ×)` — e.g. widest-probability paths.
pub fn max_times<T: Num>() -> MaxTimesSemiring<T> {
    SemiringPair::new(monoid::max(), Times::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus_relaxation_step() {
        let s = min_plus_f64();
        // relax: candidate = tent(v) ⊗ w(v, u); best = ⊕ over candidates
        let c1 = s.mul().apply(2.0, 3.0);
        let c2 = s.mul().apply(4.0, 0.5);
        let best = s.add().apply(s.add().apply(s.add().identity(), c1), c2);
        assert_eq!(best, 4.5);
    }

    #[test]
    fn min_plus_identity_annihilates() {
        let s = min_plus_f64();
        // ∞ ⊗ w = ∞ (an unreached vertex produces no useful request).
        assert_eq!(s.mul().apply(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(s.add().identity(), f64::INFINITY);
    }

    #[test]
    fn min_plus_i64_saturates() {
        let s = min_plus_i64();
        assert_eq!(s.mul().apply(i64::MAX, 100), i64::MAX);
        assert_eq!(s.add().identity(), i64::MAX);
    }

    #[test]
    fn plus_times_dot_product() {
        let s = plus_times::<i64>();
        let dot = [(2, 3), (4, 5)]
            .iter()
            .fold(s.add().identity(), |acc, &(a, b)| {
                s.add().apply(acc, s.mul().apply(a, b))
            });
        assert_eq!(dot, 26);
    }

    #[test]
    fn lor_land_reachability() {
        let s = lor_land();
        assert!(s.mul().apply(true, true));
        assert!(!s.mul().apply(true, false));
        assert!(!s.add().identity());
    }

    #[test]
    fn plus_pair_counts_matches() {
        let s = plus_pair::<f64, u64>();
        let count = (0..5).fold(s.add().identity(), |acc, _| {
            s.add().apply(acc, s.mul().apply(1.0, 2.0))
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn min_first_and_second() {
        let sf = min_first::<f64>();
        assert_eq!(sf.mul().apply(3.0, 9.0), 3.0);
        let ss = min_second::<f64>();
        assert_eq!(ss.mul().apply(3.0, 9.0), 9.0);
    }
}
