//! Index-unary operators (`GrB_IndexUnaryOp`, GraphBLAS v2.0): functions
//! of `(value, row, col)` used by positional `apply` and by `select`.
//!
//! These generalize the closure predicates of [`crate::ops::select`] into
//! named, reusable operators: the structural family (`tril`, `triu`,
//! `diag`, `offdiag`, `row/col` comparisons) and the value-threshold
//! family (`value_le`, `value_gt`, …) that delta-stepping's light/heavy
//! split is an instance of.

use std::marker::PhantomData;

use crate::descriptor::Descriptor;
use crate::error::Info;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::select::{select_matrix, select_vector};
use crate::ops::write::{accum_merge, accum_merge_matrix, mask_write_matrix, mask_write_vector, SparseMat, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// A function of a stored entry and its position: `(value, row, col) -> B`.
/// For vectors, `col` is `0`.
pub trait IndexUnaryOp<A, B>: Send + Sync {
    /// Evaluate at a stored entry.
    fn apply(&self, value: A, row: usize, col: usize) -> B;
}

/// An index-unary operator from a closure (`GrB_IndexUnaryOp_new`).
pub struct FnIndexUnary<F>(F);

impl<F> FnIndexUnary<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnIndexUnary(f)
    }
}

impl<A, B, F> IndexUnaryOp<A, B> for FnIndexUnary<F>
where
    F: Fn(A, usize, usize) -> B + Send + Sync,
{
    #[inline]
    fn apply(&self, value: A, row: usize, col: usize) -> B {
        (self.0)(value, row, col)
    }
}

macro_rules! positional_pred {
    ($(#[$doc:meta])* $name:ident, |$v:ident, $r:ident, $c:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name<T>(PhantomData<T>);

        impl<T> $name<T> {
            /// Construct the operator.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T: Scalar> IndexUnaryOp<T, bool> for $name<T> {
            #[inline]
            fn apply(&self, $v: T, $r: usize, $c: usize) -> bool {
                let _ = $v;
                $body
            }
        }
    };
}

positional_pred!(
    /// `GrB_TRIL`: entries on or below the diagonal.
    Tril, |v, r, c| c <= r
);
positional_pred!(
    /// `GrB_TRIU`: entries on or above the diagonal.
    Triu, |v, r, c| c >= r
);
positional_pred!(
    /// `GrB_DIAG`: diagonal entries.
    Diag, |v, r, c| r == c
);
positional_pred!(
    /// `GrB_OFFDIAG`: off-diagonal entries (the simple-graph cleanup of
    /// Sec. II-A: "the diagonal elements of the adjacency matrix are empty").
    OffDiag, |v, r, c| r != c
);

/// `GrB_VALUELE`: `value <= threshold` — the light-edge predicate.
#[derive(Debug, Clone, Copy)]
pub struct ValueLe<T>(pub T);

impl<T: Scalar + PartialOrd> IndexUnaryOp<T, bool> for ValueLe<T> {
    #[inline]
    fn apply(&self, value: T, _r: usize, _c: usize) -> bool {
        value <= self.0
    }
}

/// `GrB_VALUEGT`: `value > threshold` — the heavy-edge predicate.
#[derive(Debug, Clone, Copy)]
pub struct ValueGt<T>(pub T);

impl<T: Scalar + PartialOrd> IndexUnaryOp<T, bool> for ValueGt<T> {
    #[inline]
    fn apply(&self, value: T, _r: usize, _c: usize) -> bool {
        value > self.0
    }
}

/// `GrB_ROWINDEX`: returns the row index (plus an offset) — positional
/// apply, useful for building parent vectors.
#[derive(Debug, Default, Clone, Copy)]
pub struct RowIndex<T>(PhantomData<T>);

impl<T> RowIndex<T> {
    /// Construct the operator.
    pub fn new() -> Self {
        RowIndex(PhantomData)
    }
}

impl<T: Scalar> IndexUnaryOp<T, usize> for RowIndex<T> {
    #[inline]
    fn apply(&self, _value: T, row: usize, _col: usize) -> usize {
        row
    }
}

/// `GrB_COLINDEX` for matrices.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColIndex<T>(PhantomData<T>);

impl<T> ColIndex<T> {
    /// Construct the operator.
    pub fn new() -> Self {
        ColIndex(PhantomData)
    }
}

impl<T: Scalar> IndexUnaryOp<T, usize> for ColIndex<T> {
    #[inline]
    fn apply(&self, _value: T, _row: usize, col: usize) -> usize {
        col
    }
}

/// `GrB_Vector_apply_IndexOp`: positional apply on a vector.
pub fn vector_apply_indexop<A, B, Op>(
    out: &mut Vector<B>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<B, B, B>>,
    op: &Op,
    input: &Vector<A>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    Op: IndexUnaryOp<A, B> + ?Sized,
{
    out.check_same_size(input.size())?;
    if let Some(m) = mask {
        out.check_same_size(m.size())?;
    }
    let mut t = SparseVec::with_capacity(input.nvals());
    for (i, v) in input.iter() {
        t.push(i, op.apply(v, i, 0));
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

/// `GrB_Matrix_apply_IndexOp`: positional apply on a matrix.
pub fn matrix_apply_indexop<A, B, Op>(
    out: &mut Matrix<B>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<B, B, B>>,
    op: &Op,
    input: &Matrix<A>,
    desc: Descriptor,
) -> Info
where
    A: Scalar,
    B: Scalar,
    Op: IndexUnaryOp<A, B> + ?Sized,
{
    crate::error::check_dims("nrows", out.nrows(), input.nrows())?;
    crate::error::check_dims("ncols", out.ncols(), input.ncols())?;
    if let Some(m) = mask {
        crate::error::check_dims("mask nrows", out.nrows(), m.nrows())?;
        crate::error::check_dims("mask ncols", out.ncols(), m.ncols())?;
    }
    let mut t = SparseMat::empty(input.nrows(), input.ncols());
    for r in 0..input.nrows() {
        let (cols, vals) = input.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            t.col_idx.push(c);
            t.values.push(op.apply(v, r, c));
        }
        t.row_ptr[r + 1] = t.col_idx.len();
    }
    let z = accum_merge_matrix(out, t, accum);
    mask_write_matrix(out, z, mask, desc);
    Ok(())
}

/// `GrB_Vector_select`: keep entries where the boolean index-unary
/// operator holds.
pub fn vector_select_indexop<T, Op>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    op: &Op,
    input: &Vector<T>,
    desc: Descriptor,
) -> Info
where
    T: Scalar,
    Op: IndexUnaryOp<T, bool> + ?Sized,
{
    select_vector(out, mask, accum, |i, v| op.apply(v, i, 0), input, desc)
}

/// `GrB_Matrix_select`: keep entries where the boolean index-unary
/// operator holds. `select(A, ValueLe(Δ))` is the one-call light-edge
/// split.
pub fn matrix_select_indexop<T, Op>(
    out: &mut Matrix<T>,
    mask: Option<&MatrixMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    op: &Op,
    input: &Matrix<T>,
    desc: Descriptor,
) -> Info
where
    T: Scalar,
    Op: IndexUnaryOp<T, bool> + ?Sized,
{
    select_matrix(out, mask, accum, |r, c, v| op.apply(v, r, c), input, desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_triples(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tril_triu_partition_with_diag_overlap() {
        let a = sample();
        let mut lo: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut lo, None, None, &Tril::<f64>::new(), &a, Descriptor::new())
            .unwrap();
        let mut hi: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut hi, None, None, &Triu::<f64>::new(), &a, Descriptor::new())
            .unwrap();
        let mut di: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut di, None, None, &Diag::<f64>::new(), &a, Descriptor::new())
            .unwrap();
        assert_eq!(lo.nvals() + hi.nvals() - di.nvals(), a.nvals());
        assert_eq!(lo.get(2, 0), Some(4.0));
        assert_eq!(hi.get(0, 2), Some(2.0));
        assert_eq!(di.nvals(), 3);
    }

    #[test]
    fn offdiag_removes_self_loops() {
        let a = sample();
        let mut simple: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(
            &mut simple,
            None,
            None,
            &OffDiag::<f64>::new(),
            &a,
            Descriptor::new(),
        )
        .unwrap();
        assert_eq!(simple.nvals(), 2);
        assert_eq!(simple.get(0, 0), None);
    }

    #[test]
    fn value_thresholds_split_light_heavy() {
        let a = sample();
        let mut light: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut light, None, None, &ValueLe(2.5), &a, Descriptor::new())
            .unwrap();
        let mut heavy: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut heavy, None, None, &ValueGt(2.5), &a, Descriptor::new())
            .unwrap();
        assert_eq!(light.nvals(), 2);
        assert_eq!(heavy.nvals(), 3);
        assert_eq!(light.nvals() + heavy.nvals(), a.nvals());
    }

    #[test]
    fn positional_apply_row_and_col_index() {
        let a = sample();
        let mut rows: Matrix<usize> = Matrix::new(3, 3);
        matrix_apply_indexop(&mut rows, None, None, &RowIndex::<f64>::new(), &a, Descriptor::new())
            .unwrap();
        assert_eq!(rows.get(2, 0), Some(2));
        let mut cols: Matrix<usize> = Matrix::new(3, 3);
        matrix_apply_indexop(&mut cols, None, None, &ColIndex::<f64>::new(), &a, Descriptor::new())
            .unwrap();
        assert_eq!(cols.get(2, 0), Some(0));
        assert_eq!(cols.get(0, 2), Some(2));
    }

    #[test]
    fn vector_indexop_select_and_apply() {
        let v = Vector::from_entries(6, vec![(0, 5.0), (2, 1.0), (4, 3.0)]).unwrap();
        let mut small: Vector<f64> = Vector::new(6);
        vector_select_indexop(&mut small, None, None, &ValueLe(3.0), &v, Descriptor::new())
            .unwrap();
        assert_eq!(small.nvals(), 2);
        let mut idx: Vector<usize> = Vector::new(6);
        vector_apply_indexop(&mut idx, None, None, &RowIndex::<f64>::new(), &v, Descriptor::new())
            .unwrap();
        assert_eq!(idx.get(4), Some(4));
    }

    #[test]
    fn closure_indexop() {
        let a = sample();
        // Keep strictly-upper entries with even column index.
        let op = FnIndexUnary::new(|_v: f64, r: usize, c: usize| c > r && c.is_multiple_of(2));
        let mut out: Matrix<f64> = Matrix::new(3, 3);
        matrix_select_indexop(&mut out, None, None, &op, &a, Descriptor::new()).unwrap();
        assert_eq!(out.nvals(), 1);
        assert_eq!(out.get(0, 2), Some(2.0));
    }
}
