//! Binary operators (`GrB_BinaryOp`).
//!
//! These are the building blocks of element-wise operations, accumulators,
//! monoids, and the multiplicative half of semirings. All built-ins are
//! zero-sized types, so passing them by reference costs nothing and the
//! compiler can fully inline them; they are also object safe for use as
//! accumulators (`&dyn BinaryOp<T, T, T>`).

use std::marker::PhantomData;

use crate::types::{MinPlusValue, Num};

/// A binary function `(A, B) -> C`.
pub trait BinaryOp<A, B, C>: Send + Sync {
    /// Evaluate the operator.
    fn apply(&self, a: A, b: B) -> C;
}

macro_rules! simple_binop {
    ($(#[$doc:meta])* $name:ident<$t:ident : $bound:ident>, |$a:ident, $b:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name<$t>(PhantomData<$t>);

        impl<$t> $name<$t> {
            /// Construct the operator.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<$t: $bound> BinaryOp<$t, $t, $t> for $name<$t> {
            #[inline]
            fn apply(&self, $a: $t, $b: $t) -> $t {
                $body
            }
        }
    };
}

simple_binop!(
    /// `GrB_PLUS_T`: addition.
    Plus<T: Num>, |a, b| a + b
);
simple_binop!(
    /// `GrB_MINUS_T`: subtraction.
    Minus<T: Num>, |a, b| a - b
);
simple_binop!(
    /// `GrB_TIMES_T`: multiplication.
    Times<T: Num>, |a, b| a * b
);
simple_binop!(
    /// `GrB_MIN_T`: minimum (Fig. 2 uses `GrB_MIN_FP64` for `t = min(t, tReq)`).
    Min<T: Num>, |a, b| if b < a { b } else { a }
);
simple_binop!(
    /// `GrB_MAX_T`: maximum.
    Max<T: Num>, |a, b| if b > a { b } else { a }
);
simple_binop!(
    /// `GxB_PLUS_SAT` (extension): path-weight addition — saturating for
    /// integers, IEEE for floats — the multiplicative op of `(min, +)`.
    PlusSat<T: MinPlusValue>, |a, b| a.plus_weights(b)
);

/// `GrB_FIRST_T`: return the first operand.
#[derive(Debug, Default, Clone, Copy)]
pub struct First<A, B = A>(PhantomData<(A, B)>);

impl<A, B> First<A, B> {
    /// Construct the operator.
    pub fn new() -> Self {
        First(PhantomData)
    }
}

impl<A: Copy + Send + Sync, B: Send + Sync> BinaryOp<A, B, A> for First<A, B> {
    #[inline]
    fn apply(&self, a: A, _b: B) -> A {
        a
    }
}

/// `GrB_SECOND_T`: return the second operand.
#[derive(Debug, Default, Clone, Copy)]
pub struct Second<A, B = A>(PhantomData<(A, B)>);

impl<A, B> Second<A, B> {
    /// Construct the operator.
    pub fn new() -> Self {
        Second(PhantomData)
    }
}

impl<A: Send + Sync, B: Copy + Send + Sync> BinaryOp<A, B, B> for Second<A, B> {
    #[inline]
    fn apply(&self, _a: A, b: B) -> B {
        b
    }
}

/// `GxB_PAIR_T` (extension): return `1` whenever both operands are present —
/// the multiplicative op of structural (counting) semirings.
#[derive(Debug, Default, Clone, Copy)]
pub struct Pair<A, B, C = A>(PhantomData<(A, B, C)>);

impl<A, B, C> Pair<A, B, C> {
    /// Construct the operator.
    pub fn new() -> Self {
        Pair(PhantomData)
    }
}

impl<A: Send + Sync, B: Send + Sync, C: Num> BinaryOp<A, B, C> for Pair<A, B, C> {
    #[inline]
    fn apply(&self, _a: A, _b: B) -> C {
        C::one()
    }
}

macro_rules! cmp_binop {
    ($(#[$doc:meta])* $name:ident, |$a:ident, $b:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name<T>(PhantomData<T>);

        impl<T> $name<T> {
            /// Construct the comparison operator.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T: Num> BinaryOp<T, T, bool> for $name<T> {
            #[inline]
            fn apply(&self, $a: T, $b: T) -> bool {
                $body
            }
        }
    };
}

cmp_binop!(
    /// `GrB_LT_T`: less-than — the operator in the paper's problematic
    /// `t_Req < t` filter (Fig. 2, line 48; Sec. V-B).
    Lt, |a, b| a < b
);
cmp_binop!(
    /// `GrB_LE_T`: less-than-or-equal.
    Le, |a, b| a <= b
);
cmp_binop!(
    /// `GrB_GT_T`: greater-than.
    Gt, |a, b| a > b
);
cmp_binop!(
    /// `GrB_GE_T`: greater-than-or-equal.
    Ge, |a, b| a >= b
);
cmp_binop!(
    /// `GrB_EQ_T`: equality.
    Eq, |a, b| a == b
);
cmp_binop!(
    /// `GrB_NE_T`: inequality.
    Ne, |a, b| a != b
);

/// `GrB_LOR`: logical or (Fig. 2 line 45 accumulates the processed-vertex
/// set `s` with `GrB_LOR`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LOr;

impl BinaryOp<bool, bool, bool> for LOr {
    #[inline]
    fn apply(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// `GrB_LAND`: logical and.
#[derive(Debug, Default, Clone, Copy)]
pub struct LAnd;

impl BinaryOp<bool, bool, bool> for LAnd {
    #[inline]
    fn apply(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// `GrB_LXOR`: logical exclusive-or.
#[derive(Debug, Default, Clone, Copy)]
pub struct LXor;

impl BinaryOp<bool, bool, bool> for LXor {
    #[inline]
    fn apply(&self, a: bool, b: bool) -> bool {
        a != b
    }
}

/// A user-defined binary operator from a closure (`GrB_BinaryOp_new`).
pub struct FnBinary<F>(F);

impl<F> FnBinary<F> {
    /// Wrap a closure as a binary operator.
    pub fn new(f: F) -> Self {
        FnBinary(f)
    }
}

impl<A, B, C, F> BinaryOp<A, B, C> for FnBinary<F>
where
    F: Fn(A, B) -> C + Send + Sync,
{
    #[inline]
    fn apply(&self, a: A, b: B) -> C {
        (self.0)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        assert_eq!(Plus::<i32>::new().apply(2, 3), 5);
        assert_eq!(Minus::<i32>::new().apply(2, 3), -1);
        assert_eq!(Times::<f64>::new().apply(2.0, 3.0), 6.0);
        assert_eq!(Min::<f64>::new().apply(2.0, 3.0), 2.0);
        assert_eq!(Max::<f64>::new().apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn min_prefers_first_on_tie() {
        // min/max must be deterministic on ties for reproducible reductions.
        assert_eq!(Min::<f64>::new().apply(-0.0, 0.0), -0.0);
        assert_eq!(Max::<i32>::new().apply(7, 7), 7);
    }

    #[test]
    fn plus_sat_for_distances() {
        assert_eq!(PlusSat::<i64>::new().apply(i64::MAX, 10), i64::MAX);
        assert_eq!(PlusSat::<f64>::new().apply(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(PlusSat::<f64>::new().apply(1.0, 2.0), 3.0);
    }

    #[test]
    fn first_second_pair() {
        assert_eq!(First::<i32>::new().apply(1, 2), 1);
        assert_eq!(Second::<i32>::new().apply(1, 2), 2);
        let p: Pair<f64, f64, u64> = Pair::new();
        assert_eq!(p.apply(9.0, 9.0), 1u64);
    }

    #[test]
    fn comparisons() {
        assert!(Lt::<f64>::new().apply(1.0, 2.0));
        assert!(!Lt::<f64>::new().apply(2.0, 2.0));
        assert!(Le::<f64>::new().apply(2.0, 2.0));
        assert!(Gt::<i32>::new().apply(3, 2));
        assert!(Ge::<i32>::new().apply(2, 2));
        assert!(Eq::<i32>::new().apply(2, 2));
        assert!(Ne::<i32>::new().apply(2, 3));
    }

    #[test]
    fn logical_ops() {
        assert!(LOr.apply(false, true));
        assert!(!LAnd.apply(false, true));
        assert!(LXor.apply(false, true));
        assert!(!LXor.apply(true, true));
    }

    #[test]
    fn accumulator_as_trait_object() {
        let accum: &dyn BinaryOp<f64, f64, f64> = &Min::<f64>::new();
        assert_eq!(accum.apply(5.0, 3.0), 3.0);
    }

    #[test]
    fn fn_binary() {
        let hypot = FnBinary::new(|a: f64, b: f64| (a * a + b * b).sqrt());
        assert_eq!(hypot.apply(3.0, 4.0), 5.0);
    }
}
