//! Monoids (`GrB_Monoid`): an associative, commutative binary operator with
//! an identity element. Monoids are the additive half of semirings and the
//! operator of reductions.

use crate::ops::binary::{BinaryOp, LAnd, LOr, LXor, Max, Min, Plus, Times};
use crate::types::Num;

/// A commutative monoid over `T`.
pub trait Monoid<T>: BinaryOp<T, T, T> {
    /// The identity element of the operation.
    fn identity(&self) -> T;
}

/// A monoid built from any binary operator plus an explicit identity —
/// the counterpart of `GrB_Monoid_new`.
///
/// The caller asserts associativity and commutativity; the property tests in
/// this crate check them for all built-ins.
#[derive(Debug, Clone, Copy)]
pub struct CommutativeMonoid<Op, T> {
    op: Op,
    id: T,
}

impl<Op, T: Copy> CommutativeMonoid<Op, T> {
    /// Construct a monoid from `op` with identity `id`.
    pub fn new(op: Op, id: T) -> Self {
        CommutativeMonoid { op, id }
    }
}

impl<Op, T> BinaryOp<T, T, T> for CommutativeMonoid<Op, T>
where
    Op: BinaryOp<T, T, T>,
    T: Send + Sync,
{
    #[inline]
    fn apply(&self, a: T, b: T) -> T {
        self.op.apply(a, b)
    }
}

impl<Op, T> Monoid<T> for CommutativeMonoid<Op, T>
where
    Op: BinaryOp<T, T, T>,
    T: Copy + Send + Sync,
{
    #[inline]
    fn identity(&self) -> T {
        self.id
    }
}

/// `GrB_MIN_MONOID_T`: minimum with identity `+∞` / `T::MAX`.
pub fn min<T: Num>() -> CommutativeMonoid<Min<T>, T> {
    CommutativeMonoid::new(Min::new(), T::max_value())
}

/// `GrB_MAX_MONOID_T`: maximum with identity `-∞` / `T::MIN`.
pub fn max<T: Num>() -> CommutativeMonoid<Max<T>, T> {
    CommutativeMonoid::new(Max::new(), T::min_value())
}

/// `GrB_PLUS_MONOID_T`: addition with identity `0`.
pub fn plus<T: Num>() -> CommutativeMonoid<Plus<T>, T> {
    CommutativeMonoid::new(Plus::new(), T::zero())
}

/// `GrB_TIMES_MONOID_T`: multiplication with identity `1`.
pub fn times<T: Num>() -> CommutativeMonoid<Times<T>, T> {
    CommutativeMonoid::new(Times::new(), T::one())
}

/// `GrB_LOR_MONOID`: logical or with identity `false`.
pub fn lor() -> CommutativeMonoid<LOr, bool> {
    CommutativeMonoid::new(LOr, false)
}

/// `GrB_LAND_MONOID`: logical and with identity `true`.
pub fn land() -> CommutativeMonoid<LAnd, bool> {
    CommutativeMonoid::new(LAnd, true)
}

/// `GrB_LXOR_MONOID`: logical exclusive-or with identity `false`.
pub fn lxor() -> CommutativeMonoid<LXor, bool> {
    CommutativeMonoid::new(LXor, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(min::<f64>().identity(), f64::INFINITY);
        assert_eq!(max::<i32>().identity(), i32::MIN);
        assert_eq!(plus::<u64>().identity(), 0);
        assert_eq!(times::<f32>().identity(), 1.0);
        assert!(!lor().identity());
        assert!(land().identity());
        assert!(!lxor().identity());
    }

    #[test]
    fn identity_is_neutral() {
        let m = min::<f64>();
        assert_eq!(m.apply(m.identity(), 3.5), 3.5);
        assert_eq!(m.apply(3.5, m.identity()), 3.5);
        let p = plus::<i64>();
        assert_eq!(p.apply(p.identity(), -7), -7);
    }

    #[test]
    fn fold_with_monoid() {
        let m = min::<i32>();
        let values = [5, 3, 9, -2, 7];
        let folded = values.iter().fold(m.identity(), |acc, &v| m.apply(acc, v));
        assert_eq!(folded, -2);
    }

    #[test]
    fn custom_monoid() {
        // gcd is associative and commutative with identity 0.
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 { a } else { gcd(b, a % b) }
        }
        let m = CommutativeMonoid::new(crate::ops::binary::FnBinary::new(gcd), 0u64);
        assert_eq!(m.apply(12, 18), 6);
        assert_eq!(m.apply(m.identity(), 42), 42);
    }
}
