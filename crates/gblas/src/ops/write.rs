//! Shared implementation of the GraphBLAS write semantics.
//!
//! Every operation computes an intermediate result `T`, merges it with the
//! output through the optional accumulator (`Z = out ⊙ T`), and writes `Z`
//! through the (possibly complemented) mask:
//!
//! ```text
//! out[i] = mask allows i ? Z[i]                    (absent if Z[i] absent)
//!        :                 replace ? absent : out_old[i]
//! ```

use crate::descriptor::Descriptor;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::types::Scalar;
use crate::vector::Vector;

/// A sorted sparse vector payload: the intermediate `T`/`Z` of an operation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SparseVec<T> {
    pub indices: Vec<usize>,
    pub values: Vec<T>,
}

impl<T: Scalar> SparseVec<T> {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        SparseVec {
            indices: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn push(&mut self, index: usize, value: T) {
        debug_assert!(self.indices.last().is_none_or(|&last| last < index));
        self.indices.push(index);
        self.values.push(value);
    }

    pub(crate) fn len(&self) -> usize {
        self.indices.len()
    }
}

/// A sparse matrix payload in CSR form: the intermediate `T`/`Z` of a matrix
/// operation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SparseMat<T> {
    pub nrows: usize,
    pub ncols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<T>,
}

impl<T: Scalar> SparseMat<T> {
    pub(crate) fn empty(nrows: usize, ncols: usize) -> Self {
        SparseMat {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    #[allow(dead_code)]
    pub(crate) fn from_matrix(m: &Matrix<T>) -> Self {
        SparseMat {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr: m.row_ptr().to_vec(),
            col_idx: m.col_indices().to_vec(),
            values: m.values().to_vec(),
        }
    }

    pub(crate) fn row(&self, r: usize) -> (&[usize], &[T]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    pub(crate) fn into_matrix(self) -> Matrix<T> {
        Matrix::from_csr_unchecked(self.nrows, self.ncols, self.row_ptr, self.col_idx, self.values)
    }
}

/// Union-merge two sorted sparse vectors with per-side transforms:
/// positions present in both get `both(a, b)`; positions present in only one
/// side get `only_a(a)` / `only_b(b)`. This is the engine of `eWiseAdd` and
/// of accumulator merging.
pub(crate) fn union_merge<A, B, C>(
    ai: &[usize],
    av: &[A],
    bi: &[usize],
    bv: &[B],
    only_a: impl Fn(A) -> C,
    only_b: impl Fn(B) -> C,
    both: impl Fn(A, B) -> C,
) -> SparseVec<C>
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
{
    let mut out = SparseVec::with_capacity(ai.len() + bi.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => {
                out.push(ai[p], only_a(av[p]));
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(bi[q], only_b(bv[q]));
                q += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(ai[p], both(av[p], bv[q]));
                p += 1;
                q += 1;
            }
        }
    }
    while p < ai.len() {
        out.push(ai[p], only_a(av[p]));
        p += 1;
    }
    while q < bi.len() {
        out.push(bi[q], only_b(bv[q]));
        q += 1;
    }
    out
}

/// Intersection-merge two sorted sparse vectors: only positions present in
/// both sides survive. The engine of `eWiseMult`.
pub(crate) fn intersect_merge<A, B, C>(
    ai: &[usize],
    av: &[A],
    bi: &[usize],
    bv: &[B],
    both: impl Fn(A, B) -> C,
) -> SparseVec<C>
where
    A: Scalar,
    B: Scalar,
    C: Scalar,
{
    let mut out = SparseVec::with_capacity(ai.len().min(bi.len()));
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                out.push(ai[p], both(av[p], bv[q]));
                p += 1;
                q += 1;
            }
        }
    }
    out
}

/// Merge the freshly computed `T` with the existing output through the
/// optional accumulator: `Z = accum.is_some() ? out ⊙ T : T`.
pub(crate) fn accum_merge<T: Scalar>(
    out: &Vector<T>,
    t: SparseVec<T>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
) -> SparseVec<T> {
    match accum {
        None => t,
        Some(op) => union_merge(
            out.indices(),
            out.values(),
            &t.indices,
            &t.values,
            |old| old,
            |new| new,
            |old, new| op.apply(old, new),
        ),
    }
}

/// Write `Z` into `out` through the mask, honouring `replace` and
/// `complement_mask` from the descriptor.
pub(crate) fn mask_write_vector<T: Scalar>(
    out: &mut Vector<T>,
    z: SparseVec<T>,
    mask: Option<&VectorMask>,
    desc: Descriptor,
) {
    // The single mutation point of every vector operation's output: any
    // task reading `out` concurrently with this write is a race the
    // checker must see.
    #[cfg(feature = "racecheck")]
    racecheck::plain_write("gblas.vec.out", &*out as *const Vector<T>);
    match mask {
        None => {
            if desc.complement_mask {
                // Implicit all-true mask complemented: nothing may be
                // written; replace clears the output.
                if desc.replace {
                    out.clear();
                }
            } else {
                out.replace_data(z.indices, z.values);
            }
        }
        Some(m) => {
            let comp = desc.complement_mask;
            let (old_idx, old_val) = out.take_data();
            let mut indices = Vec::with_capacity(old_idx.len() + z.len());
            let mut values = Vec::with_capacity(old_idx.len() + z.len());
            // Walk the union of Z's and the old entries' index sets in order.
            let (mut zp, mut op) = (0usize, 0usize);
            while zp < z.indices.len() || op < old_idx.len() {
                let zi = z.indices.get(zp).copied().unwrap_or(usize::MAX);
                let oi = old_idx.get(op).copied().unwrap_or(usize::MAX);
                let i = zi.min(oi);
                let in_z = zi == i;
                let in_old = oi == i;
                let keep = if m.allows_with(i, comp) {
                    // Mask allows: the position becomes whatever Z holds
                    // (deleting a stale old entry when Z is absent there).
                    in_z.then(|| z.values[zp])
                } else if in_old && !desc.replace {
                    // Mask blocks: old survives unless replace.
                    Some(old_val[op])
                } else {
                    None
                };
                if let Some(val) = keep {
                    indices.push(i);
                    values.push(val);
                }
                zp += usize::from(in_z);
                op += usize::from(in_old);
            }
            out.replace_data(indices, values);
        }
    }
}

/// Matrix counterpart of [`accum_merge`].
pub(crate) fn accum_merge_matrix<T: Scalar>(
    out: &Matrix<T>,
    t: SparseMat<T>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
) -> SparseMat<T> {
    match accum {
        None => t,
        Some(op) => {
            let mut z = SparseMat::empty(t.nrows, t.ncols);
            for r in 0..t.nrows {
                let (ocols, ovals) = out.row(r);
                let (tcols, tvals) = t.row(r);
                let merged = union_merge(
                    ocols,
                    ovals,
                    tcols,
                    tvals,
                    |old| old,
                    |new| new,
                    |old, new| op.apply(old, new),
                );
                z.col_idx.extend_from_slice(&merged.indices);
                z.values.extend_from_slice(&merged.values);
                z.row_ptr[r + 1] = z.col_idx.len();
            }
            z
        }
    }
}

/// Matrix counterpart of [`mask_write_vector`].
pub(crate) fn mask_write_matrix<T: Scalar>(
    out: &mut Matrix<T>,
    z: SparseMat<T>,
    mask: Option<&MatrixMask>,
    desc: Descriptor,
) {
    #[cfg(feature = "racecheck")]
    racecheck::plain_write("gblas.mat.out", &*out as *const Matrix<T>);
    match mask {
        None => {
            if desc.complement_mask {
                if desc.replace {
                    *out = Matrix::new(z.nrows, z.ncols);
                }
            } else {
                *out = z.into_matrix();
            }
        }
        Some(m) => {
            let comp = desc.complement_mask;
            let mut result = SparseMat::empty(z.nrows, z.ncols);
            for r in 0..z.nrows {
                let (zc, zv) = z.row(r);
                let (oc, ov) = out.row(r);
                let (mut zp, mut op) = (0usize, 0usize);
                // Walk the union of the row's Z and old entries in order.
                while zp < zc.len() || op < oc.len() {
                    let zi = zc.get(zp).copied().unwrap_or(usize::MAX);
                    let oi = oc.get(op).copied().unwrap_or(usize::MAX);
                    let c = zi.min(oi);
                    let in_z = zi == c;
                    let in_old = oi == c;
                    let allowed = m.allows_with(r, c, comp);
                    let keep = if allowed {
                        if in_z {
                            Some(zv[zp])
                        } else {
                            None
                        }
                    } else if in_old && !desc.replace {
                        Some(ov[op])
                    } else {
                        None
                    };
                    if let Some(v) = keep {
                        result.col_idx.push(c);
                        result.values.push(v);
                    }
                    if in_z {
                        zp += 1;
                    }
                    if in_old {
                        op += 1;
                    }
                }
                result.row_ptr[r + 1] = result.col_idx.len();
            }
            *out = result.into_matrix();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    #[test]
    fn union_merge_all_cases() {
        let m = union_merge(
            &[0, 2, 4],
            &[10, 20, 40],
            &[2, 3],
            &[200, 300],
            |a| a,
            |b| b,
            |a, b| a + b,
        );
        assert_eq!(m.indices, vec![0, 2, 3, 4]);
        assert_eq!(m.values, vec![10, 220, 300, 40]);
    }

    #[test]
    fn intersect_merge_keeps_common_only() {
        let m = intersect_merge(&[0, 2, 4], &[1, 2, 3], &[2, 4, 6], &[10, 20, 30], |a, b| a * b);
        assert_eq!(m.indices, vec![2, 4]);
        assert_eq!(m.values, vec![20, 60]);
    }

    #[test]
    fn accum_merge_none_is_t() {
        let out = Vector::from_entries(5, vec![(0, 1)]).unwrap();
        let t = SparseVec {
            indices: vec![2],
            values: vec![9],
        };
        let z = accum_merge(&out, t.clone(), None);
        assert_eq!(z, t);
    }

    #[test]
    fn accum_merge_union_with_op() {
        let out = Vector::from_entries(5, vec![(0, 1), (2, 2)]).unwrap();
        let t = SparseVec {
            indices: vec![2, 3],
            values: vec![10, 30],
        };
        let z = accum_merge(&out, t, Some(&Plus::<i32>::new()));
        assert_eq!(z.indices, vec![0, 2, 3]);
        assert_eq!(z.values, vec![1, 12, 30]);
    }

    #[test]
    fn mask_write_no_mask_replaces_contents() {
        let mut out = Vector::from_entries(4, vec![(0, 5)]).unwrap();
        let z = SparseVec {
            indices: vec![1],
            values: vec![7],
        };
        mask_write_vector(&mut out, z, None, Descriptor::new());
        assert_eq!(out.get(0), None);
        assert_eq!(out.get(1), Some(7));
    }

    #[test]
    fn mask_write_blocked_entries_survive_without_replace() {
        let mut out = Vector::from_entries(4, vec![(0, 5), (2, 6)]).unwrap();
        let mask_v = Vector::from_entries(4, vec![(1, true), (2, true)]).unwrap();
        let m = mask_v.mask();
        let z = SparseVec {
            indices: vec![1, 2],
            values: vec![70, 80],
        };
        mask_write_vector(&mut out, z, Some(&m), Descriptor::new());
        assert_eq!(out.get(0), Some(5)); // blocked, kept
        assert_eq!(out.get(1), Some(70));
        assert_eq!(out.get(2), Some(80));
    }

    #[test]
    fn mask_write_replace_deletes_blocked_entries() {
        let mut out = Vector::from_entries(4, vec![(0, 5), (2, 6)]).unwrap();
        let mask_v = Vector::from_entries(4, vec![(1, true)]).unwrap();
        let m = mask_v.mask();
        let z = SparseVec {
            indices: vec![1],
            values: vec![70],
        };
        mask_write_vector(&mut out, z, Some(&m), Descriptor::replace());
        assert_eq!(out.get(0), None); // blocked + replace: deleted
        assert_eq!(out.get(1), Some(70));
        assert_eq!(out.get(2), None);
    }

    #[test]
    fn mask_write_allowed_position_with_no_z_entry_is_deleted() {
        let mut out = Vector::from_entries(4, vec![(1, 5)]).unwrap();
        let mask_v = Vector::from_entries(4, vec![(1, true)]).unwrap();
        let m = mask_v.mask();
        let z = SparseVec {
            indices: vec![],
            values: vec![],
        };
        mask_write_vector::<i32>(&mut out, z, Some(&m), Descriptor::new());
        assert_eq!(out.get(1), None);
    }

    #[test]
    fn mask_write_complement() {
        let mut out: Vector<i32> = Vector::new(4);
        let mask_v = Vector::from_entries(4, vec![(1, true)]).unwrap();
        let m = mask_v.mask();
        let z = SparseVec {
            indices: vec![0, 1],
            values: vec![10, 11],
        };
        mask_write_vector(
            &mut out,
            z,
            Some(&m),
            Descriptor::new().with_complement_mask(),
        );
        assert_eq!(out.get(0), Some(10)); // complemented mask allows 0
        assert_eq!(out.get(1), None); // and blocks 1
    }

    #[test]
    fn mask_write_no_mask_complement_is_all_false() {
        let mut out = Vector::from_entries(3, vec![(0, 1)]).unwrap();
        let z = SparseVec {
            indices: vec![1],
            values: vec![2],
        };
        mask_write_vector(&mut out, z.clone(), None, Descriptor::new().with_complement_mask());
        assert_eq!(out.get(0), Some(1)); // nothing written, old kept
        assert_eq!(out.get(1), None);
        mask_write_vector(
            &mut out,
            z,
            None,
            Descriptor::new().with_complement_mask().with_replace(),
        );
        assert_eq!(out.nvals(), 0); // replace clears
    }

    #[test]
    fn matrix_mask_write_round_trip() {
        let mut out = Matrix::from_triples(2, 2, vec![(0, 0, 1), (1, 1, 2)]).unwrap();
        let z = SparseMat {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 1, 1],
            col_idx: vec![1],
            values: vec![9],
        };
        let mask_m = Matrix::from_triples(2, 2, vec![(0, 1, true)]).unwrap();
        let m = mask_m.mask();
        mask_write_matrix(&mut out, z, Some(&m), Descriptor::new());
        assert_eq!(out.get(0, 0), Some(1)); // blocked, kept
        assert_eq!(out.get(0, 1), Some(9)); // allowed, written
        assert_eq!(out.get(1, 1), Some(2)); // blocked, kept
        out.check_invariants().unwrap();
    }
}
