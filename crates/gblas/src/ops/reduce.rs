//! `GrB_reduce`: fold the stored entries of an object with a monoid.

use crate::descriptor::Descriptor;
use crate::error::{check_dims, Info};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::ops::write::{accum_merge, mask_write_vector, SparseVec};
use crate::types::Scalar;
use crate::vector::Vector;

/// Reduce all stored entries of a vector to a scalar
/// (`GrB_Vector_reduce`). Returns the monoid identity when the vector
/// stores nothing.
pub fn reduce_vector<T: Scalar, M: Monoid<T>>(monoid: &M, v: &Vector<T>) -> T {
    v.values()
        .iter()
        .fold(monoid.identity(), |acc, &x| monoid.apply(acc, x))
}

/// Reduce all stored entries of a matrix to a scalar
/// (`GrB_Matrix_reduce`).
pub fn reduce_matrix<T: Scalar, M: Monoid<T>>(monoid: &M, a: &Matrix<T>) -> T {
    a.values()
        .iter()
        .fold(monoid.identity(), |acc, &x| monoid.apply(acc, x))
}

/// Row-wise reduction of a matrix into a vector
/// (`GrB_Matrix_reduce_Monoid`): `out[i] = ⊕ over row i`. Rows with no
/// stored entries produce no output entry. With `desc.transpose_a` the
/// reduction runs over columns instead.
pub fn reduce_matrix_to_vector<T: Scalar, M: Monoid<T>>(
    out: &mut Vector<T>,
    mask: Option<&VectorMask>,
    accum: Option<&dyn BinaryOp<T, T, T>>,
    monoid: &M,
    a: &Matrix<T>,
    desc: Descriptor,
) -> Info {
    if desc.transpose_a {
        let at = crate::ops::transpose::transpose(a);
        let inner = Descriptor {
            transpose_a: false,
            ..desc
        };
        return reduce_matrix_to_vector(out, mask, accum, monoid, &at, inner);
    }
    check_dims("out size vs nrows", a.nrows(), out.size())?;
    if let Some(m) = mask {
        check_dims("mask size", out.size(), m.size())?;
    }
    let mut t = SparseVec::with_capacity(a.nrows().min(64));
    for i in 0..a.nrows() {
        let (_, vals) = a.row(i);
        if let Some((&first, rest)) = vals.split_first() {
            let folded = rest.iter().fold(first, |acc, &x| monoid.apply(acc, x));
            t.push(i, folded);
        }
    }
    let z = accum_merge(out, t, accum);
    mask_write_vector(out, z, mask, desc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::monoid;

    #[test]
    fn reduce_vector_sum_and_min() {
        let v = Vector::from_entries(5, vec![(0, 3.0), (2, 1.0), (4, 2.0)]).unwrap();
        assert_eq!(reduce_vector(&monoid::plus::<f64>(), &v), 6.0);
        assert_eq!(reduce_vector(&monoid::min::<f64>(), &v), 1.0);
    }

    #[test]
    fn reduce_empty_vector_is_identity() {
        let v: Vector<f64> = Vector::new(5);
        assert_eq!(reduce_vector(&monoid::plus::<f64>(), &v), 0.0);
        assert_eq!(reduce_vector(&monoid::min::<f64>(), &v), f64::INFINITY);
    }

    #[test]
    fn reduce_matrix_scalar() {
        let a = Matrix::from_triples(2, 2, vec![(0, 0, 1), (1, 1, 2)]).unwrap();
        assert_eq!(reduce_matrix(&monoid::plus::<i32>(), &a), 3);
    }

    #[test]
    fn reduce_rows_skips_empty_rows() {
        let a = Matrix::from_triples(3, 3, vec![(0, 0, 1.0), (0, 2, 5.0), (2, 1, 2.0)]).unwrap();
        let mut out = Vector::new(3);
        reduce_matrix_to_vector(&mut out, None, None, &monoid::min::<f64>(), &a, Descriptor::new())
            .unwrap();
        assert_eq!(out.get(0), Some(1.0));
        assert_eq!(out.get(1), None); // empty row: no entry
        assert_eq!(out.get(2), Some(2.0));
    }

    #[test]
    fn reduce_columns_with_transpose() {
        let a = Matrix::from_triples(2, 3, vec![(0, 0, 1.0), (1, 0, 4.0), (1, 2, 2.0)]).unwrap();
        let mut out = Vector::new(3);
        reduce_matrix_to_vector(
            &mut out,
            None,
            None,
            &monoid::plus::<f64>(),
            &a,
            Descriptor::new().with_transpose_a(),
        )
        .unwrap();
        assert_eq!(out.get(0), Some(5.0));
        assert_eq!(out.get(1), None);
        assert_eq!(out.get(2), Some(2.0));
    }

    #[test]
    fn reduce_rows_dimension_check() {
        let a: Matrix<f64> = Matrix::new(3, 3);
        let mut out: Vector<f64> = Vector::new(2);
        assert!(reduce_matrix_to_vector(
            &mut out,
            None,
            None,
            &monoid::min::<f64>(),
            &a,
            Descriptor::new()
        )
        .is_err());
    }
}
