//! Operators (unary, binary, monoids, semirings) and the GraphBLAS
//! operations built on them.
//!
//! The submodules [`unary`], [`binary`], [`monoid`], and [`semiring`] define
//! the algebraic objects; the remaining submodules implement the
//! specification operations (`apply`, `eWiseAdd`/`eWiseMult`, `vxm`/`mxv`/
//! `mxm`, `reduce`, `extract`/`assign`, `select`, `transpose`), all
//! re-exported here.

pub mod apply;
pub mod apply_binop;
pub mod assign;
pub mod binary;
pub mod concat_split;
pub mod ewise;
pub mod ewise_union;
pub mod extract;
pub mod index_unary;
pub mod kron;
pub mod monoid;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod select;
pub mod semiring;
pub mod transpose;
pub mod unary;
pub(crate) mod write;
pub mod vxm;

pub use apply::{matrix_apply, vector_apply};
pub use apply_binop::{
    matrix_apply_bind_first, matrix_apply_bind_second, vector_apply_bind_first,
    vector_apply_bind_second,
};
pub use assign::{assign_element, assign_subvector, assign_vector_constant};
pub use concat_split::{concat, split};
pub use binary::{
    BinaryOp, Eq, First, FnBinary, Ge, Gt, LAnd, LOr, LXor, Le, Lt, Max, Min, Minus, Ne,
    Pair, Plus, PlusSat, Second, Times,
};
pub use ewise::{ewise_add_matrix, ewise_add_vector, ewise_mult_matrix, ewise_mult_vector};
pub use ewise_union::{ewise_union_matrix, ewise_union_vector};
pub use extract::{extract_element, extract_submatrix, extract_subvector};
pub use index_unary::{
    matrix_apply_indexop, matrix_select_indexop, vector_apply_indexop, vector_select_indexop,
    ColIndex, Diag, FnIndexUnary, IndexUnaryOp, OffDiag, RowIndex, Tril, Triu, ValueGt, ValueLe,
};
pub use kron::{kron, kron_power};
pub use monoid::{CommutativeMonoid, Monoid};
pub use mxm::mxm;
pub use mxv::mxv;
pub use reduce::{reduce_matrix, reduce_matrix_to_vector, reduce_vector};
pub use select::{select_matrix, select_vector};
pub use semiring::{Semiring, SemiringPair};
pub use transpose::transpose;
pub use unary::{AInv, FnUnary, Identity, LNot, MInv, One, UnaryOp};
pub use vxm::{vxm, vxm_pull};
