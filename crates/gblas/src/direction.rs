//! The shared push/pull **density oracle** for frontier kernels.
//!
//! GraphBLAST (Yang, Buluç, Owens) shows that the single biggest win
//! available to a masked `vxm`-style relaxation is switching *direction*
//! on frontier density: a sparse frontier wants the push form (scatter
//! the frontier's out-edges), a dense frontier wants the pull form (scan
//! every candidate row against a frontier bitmap, sequential reads, no
//! scatter/merge/sort). Every frontier consumer in this workspace — the
//! fused loop, the request-buffer parallel loop, and the gblas `vxm`
//! call site — asks *this* oracle, so the decision is made once, the
//! same way, everywhere, and stays deterministic across thread counts.
//!
//! The decision input is the frontier's out-edge count relative to the
//! total edge count of the operand (for delta-stepping: the light
//! sub-graph `A_L`). Both numbers are schedule-independent, so the
//! chosen direction is a pure function of algorithm state — a
//! requirement, because the determinism suite compares runs at 1/2/4
//! threads bit for bit.
//!
//! The threshold is recorded in `BENCH_sssp.json` by the bench harness;
//! see DESIGN.md §14 for the measurement behind the default.
//!
//! A process-wide override (mirroring `reqbuf`'s relaxation-threshold
//! override) lets benchmarks and tests force either direction; both
//! kernels must produce bit-identical results, so the override can never
//! change observable output — only speed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which way to run a frontier relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Scatter the frontier's out-edges through request routing.
    Push,
    /// Scan candidate vertices' in-edges against a frontier bitmap.
    Pull,
}

/// Pull when `frontier_edges * PULL_EDGE_FRACTION_DENOM >= total_edges`,
/// i.e. when the frontier carries at least `1/DENOM` of the operand's
/// edges. The pull pass reads `O(n + candidate in-edges)` sequentially
/// instead of scattering `O(frontier_edges)` with a merge + sort behind
/// it, so it only pays off once the frontier is a sizable fraction of
/// the graph (the "explosion" phases of small-world graphs). Measured on
/// the fig3/fig4 dense-frontier suite — see `BENCH_sssp.json`'s
/// `direction` block and DESIGN.md §14.
pub const PULL_EDGE_FRACTION_DENOM: usize = 8;

/// `0` = auto (density decides), `1` = force push, `2` = force pull.
static DIRECTION_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Phase-decision counters (test/bench instrumentation): how many times
/// the oracle answered push / pull since the last reset. Monotonic and
/// process-wide; only ever read by tests asserting that a workload
/// actually crossed the switch boundary.
static PUSH_DECISIONS: AtomicU64 = AtomicU64::new(0);
static PULL_DECISIONS: AtomicU64 = AtomicU64::new(0);

/// Force every oracle consultation to answer `Some(direction)`, or
/// restore density-based auto selection with `None`.
///
/// Process-wide, like `reqbuf::set_relax_threshold_override`: benchmarks
/// use it to time forced-push vs forced-pull, and the direction-sweep
/// test uses it to prove both kernels are bit-identical. No data is
/// published through the flag, so `Relaxed` suffices.
pub fn set_direction_override(forced: Option<Direction>) {
    let code = match forced {
        None => 0,
        Some(Direction::Push) => 1,
        Some(Direction::Pull) => 2,
    };
    DIRECTION_OVERRIDE.store(code, Ordering::Relaxed);
}

/// The pure density rule, before any override: pull iff the frontier
/// carries at least `1/`[`PULL_EDGE_FRACTION_DENOM`] of `total_edges`.
pub fn decide(frontier_edges: usize, total_edges: usize) -> Direction {
    if total_edges > 0
        && frontier_edges.saturating_mul(PULL_EDGE_FRACTION_DENOM) >= total_edges
    {
        Direction::Pull
    } else {
        Direction::Push
    }
}

/// What the consumers call once per frontier epoch: [`decide`] unless an
/// override is pinned, plus decision accounting.
pub fn choose(frontier_edges: usize, total_edges: usize) -> Direction {
    let chosen = match DIRECTION_OVERRIDE.load(Ordering::Relaxed) {
        1 => Direction::Push,
        2 => Direction::Pull,
        _ => decide(frontier_edges, total_edges),
    };
    match chosen {
        Direction::Push => PUSH_DECISIONS.fetch_add(1, Ordering::Relaxed),
        Direction::Pull => PULL_DECISIONS.fetch_add(1, Ordering::Relaxed),
    };
    chosen
}

/// Zero the decision counters (test instrumentation).
pub fn reset_decision_counters() {
    PUSH_DECISIONS.store(0, Ordering::Relaxed);
    PULL_DECISIONS.store(0, Ordering::Relaxed);
}

/// `(push, pull)` decisions since the last reset. Process-wide: under a
/// parallel test runner other suites may bump these concurrently, so
/// assertions should be monotone ("pull fired at least once"), never
/// exact counts.
pub fn decision_counters() -> (u64, u64) {
    (
        PUSH_DECISIONS.load(Ordering::Relaxed),
        PULL_DECISIONS.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RAII reset so a failing assertion can't leak a forced direction
    /// into other tests in the same process.
    struct OverrideGuard;
    impl Drop for OverrideGuard {
        fn drop(&mut self) {
            set_direction_override(None);
        }
    }

    #[test]
    fn decide_switches_on_edge_fraction() {
        // 1/DENOM of the edges is exactly the boundary (inclusive).
        let total = 800;
        let boundary = total / PULL_EDGE_FRACTION_DENOM;
        assert_eq!(decide(boundary - 1, total), Direction::Push);
        assert_eq!(decide(boundary, total), Direction::Pull);
        assert_eq!(decide(total, total), Direction::Pull);
        // Degenerate operands never pull.
        assert_eq!(decide(0, 0), Direction::Push);
        assert_eq!(decide(5, 0), Direction::Push);
        // Huge frontiers must not overflow the fraction test.
        assert_eq!(decide(usize::MAX, usize::MAX), Direction::Pull);
    }

    #[test]
    fn override_pins_both_ways_and_clears() {
        let _guard = OverrideGuard;
        set_direction_override(Some(Direction::Pull));
        assert_eq!(choose(0, 1_000_000), Direction::Pull);
        set_direction_override(Some(Direction::Push));
        assert_eq!(choose(1_000_000, 1), Direction::Push);
        set_direction_override(None);
        assert_eq!(choose(0, 1_000_000), Direction::Push);
        assert_eq!(choose(1_000_000, 1), Direction::Pull);
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let _guard = OverrideGuard;
        set_direction_override(None);
        let (push0, pull0) = decision_counters();
        choose(0, 100); // push
        choose(100, 100); // pull
        let (push1, pull1) = decision_counters();
        assert!(push1 > push0);
        assert!(pull1 > pull0);
    }
}
