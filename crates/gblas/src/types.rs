//! Scalar type machinery: the [`Scalar`] bound every stored value satisfies,
//! the numeric [`Num`] trait for arithmetic semirings, the [`MinPlusValue`]
//! trait for tropical (shortest-path) algebra, and [`CastTo`] — the
//! GraphBLAS-style typecast used by `eWiseAdd` pass-through.

/// Index type for vector and matrix coordinates (`GrB_Index`).
pub type Index = usize;

/// The bound every value stored in a [`crate::Vector`] or [`crate::Matrix`]
/// must satisfy.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {}
impl<T: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static> Scalar for T {}

/// Minimal numeric abstraction for arithmetic monoids and semirings.
///
/// Deliberately tiny (this is not a general numerics crate): just what the
/// built-in operators in [`crate::ops`] need.
pub trait Num:
    Scalar
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Largest representable value (identity of the `min` monoid).
    fn max_value() -> Self;
    /// Smallest representable value (identity of the `max` monoid).
    fn min_value() -> Self;
}

macro_rules! impl_num_int {
    ($($t:ty),*) => {$(
        impl Num for $t {
            #[inline] fn zero() -> Self { 0 }
            #[inline] fn one() -> Self { 1 }
            #[inline] fn max_value() -> Self { <$t>::MAX }
            #[inline] fn min_value() -> Self { <$t>::MIN }
        }
    )*};
}
impl_num_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! impl_num_float {
    ($($t:ty),*) => {$(
        impl Num for $t {
            #[inline] fn zero() -> Self { 0.0 }
            #[inline] fn one() -> Self { 1.0 }
            #[inline] fn max_value() -> Self { <$t>::INFINITY }
            #[inline] fn min_value() -> Self { <$t>::NEG_INFINITY }
        }
    )*};
}
impl_num_float!(f32, f64);

/// Values usable in the `(min, +)` (tropical) semiring for shortest paths.
///
/// The key subtlety is the "plus": with an integer distance type, `∞` is
/// `MAX`, and `∞ + w` must stay `∞` rather than wrap — so integer types use
/// saturating addition. Floats use IEEE addition, where `∞ + w = ∞` already
/// holds.
pub trait MinPlusValue: Num {
    /// The semiring's additive-monoid identity (`∞`).
    fn infinity() -> Self {
        Self::max_value()
    }
    /// The semiring's multiplicative operation: weight accumulation along a
    /// path, saturating at `∞` for integer types.
    fn plus_weights(self, other: Self) -> Self;
    /// Whether this value is the `∞` sentinel (vertex unreached).
    fn is_infinite_dist(self) -> bool {
        self == Self::infinity()
    }
}

macro_rules! impl_minplus_int {
    ($($t:ty),*) => {$(
        impl MinPlusValue for $t {
            #[inline]
            fn plus_weights(self, other: Self) -> Self {
                self.saturating_add(other)
            }
        }
    )*};
}
impl_minplus_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl MinPlusValue for f32 {
    #[inline]
    fn plus_weights(self, other: Self) -> Self {
        self + other
    }
}
impl MinPlusValue for f64 {
    #[inline]
    fn plus_weights(self, other: Self) -> Self {
        self + other
    }
}

/// GraphBLAS-style typecast between domains.
///
/// The C API freely casts between the built-in types when an operator's
/// domain differs from an object's domain. We only need it in one place —
/// `eWiseAdd`'s pass-through of a lone operand into the output domain — but
/// that one place is exactly the Sec. V-B pitfall, so the cast semantics
/// must match the C API: numeric → bool is "non-zero is true", bool →
/// numeric is 0/1.
pub trait CastTo<C>: Copy {
    /// Convert `self` into the target domain.
    fn cast(self) -> C;
}

macro_rules! impl_cast_num {
    ($from:ty => $($to:ty),*) => {$(
        impl CastTo<$to> for $from {
            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn cast(self) -> $to {
                self as $to
            }
        }
    )*};
}

macro_rules! impl_casts_for {
    ($($from:ty),*) => {$(
        impl_cast_num!($from => i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);
        impl CastTo<bool> for $from {
            #[inline]
            fn cast(self) -> bool {
                // GraphBLAS cast to bool: non-zero is true.
                self != (0 as $from)
            }
        }
    )*};
}
impl_casts_for!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_cast_from_bool {
    ($($to:ty),*) => {$(
        impl CastTo<$to> for bool {
            #[inline]
            fn cast(self) -> $to {
                if self { 1 as $to } else { 0 as $to }
            }
        }
    )*};
}
impl_cast_from_bool!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

impl CastTo<bool> for bool {
    #[inline]
    fn cast(self) -> bool {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_identities() {
        assert_eq!(<f64 as Num>::zero(), 0.0);
        assert_eq!(<f64 as Num>::max_value(), f64::INFINITY);
        assert_eq!(<i32 as Num>::max_value(), i32::MAX);
        assert_eq!(<u8 as Num>::min_value(), 0);
    }

    #[test]
    fn minplus_saturates_for_ints() {
        let inf = <i64 as MinPlusValue>::infinity();
        assert_eq!(inf.plus_weights(5), inf);
        assert_eq!(10i64.plus_weights(7), 17);
        assert!(inf.is_infinite_dist());
        assert!(!0i64.is_infinite_dist());
    }

    #[test]
    fn minplus_floats_propagate_infinity() {
        let inf = <f64 as MinPlusValue>::infinity();
        assert_eq!(inf.plus_weights(3.0), f64::INFINITY);
        assert_eq!(1.5f64.plus_weights(2.5), 4.0);
    }

    #[test]
    fn cast_numeric_to_bool_is_nonzero() {
        assert!(CastTo::<bool>::cast(3.5f64));
        assert!(!CastTo::<bool>::cast(0.0f64));
        assert!(CastTo::<bool>::cast(-1i32));
        assert!(!CastTo::<bool>::cast(0u8));
    }

    #[test]
    fn cast_bool_to_numeric_is_01() {
        assert_eq!(CastTo::<f64>::cast(true), 1.0);
        assert_eq!(CastTo::<i32>::cast(false), 0);
    }

    #[test]
    fn cast_identity() {
        assert_eq!(CastTo::<f64>::cast(2.5f64), 2.5);
        assert!(CastTo::<bool>::cast(true));
    }

    #[test]
    fn cast_between_numeric_domains() {
        assert_eq!(CastTo::<i64>::cast(2.9f64), 2);
        assert_eq!(CastTo::<f32>::cast(7u32), 7.0);
    }
}
