//! Per-operation descriptors (`GrB_Descriptor`).

/// Options modifying a single GraphBLAS call.
///
/// * `replace` — `GrB_OUTP = GrB_REPLACE`: clear the output before writing
///   the masked result (the paper's `clear_desc`). Without it, unmasked old
///   entries survive.
/// * `complement_mask` — `GrB_MASK = GrB_COMP`: the mask allows positions it
///   does *not* contain.
/// * `transpose_a` / `transpose_b` — `GrB_INP0/1 = GrB_TRAN`: operate on the
///   transpose of the corresponding matrix input.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Clear the output object before the masked write.
    pub replace: bool,
    /// Complement the mask.
    pub complement_mask: bool,
    /// Use the transpose of the first matrix input.
    pub transpose_a: bool,
    /// Use the transpose of the second matrix input.
    pub transpose_b: bool,
}

impl Descriptor {
    /// The default descriptor: merge into the output, plain mask, no
    /// transposes (`GrB_NULL` in the C API).
    pub fn new() -> Self {
        Descriptor::default()
    }

    /// The paper's `clear_desc`: replace the output.
    pub fn replace() -> Self {
        Descriptor {
            replace: true,
            ..Descriptor::default()
        }
    }

    /// Builder: set `replace`.
    pub fn with_replace(mut self) -> Self {
        self.replace = true;
        self
    }

    /// Builder: complement the mask.
    pub fn with_complement_mask(mut self) -> Self {
        self.complement_mask = true;
        self
    }

    /// Builder: transpose the first matrix input.
    pub fn with_transpose_a(mut self) -> Self {
        self.transpose_a = true;
        self
    }

    /// Builder: transpose the second matrix input.
    pub fn with_transpose_b(mut self) -> Self {
        self.transpose_b = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_off() {
        let d = Descriptor::new();
        assert!(!d.replace && !d.complement_mask && !d.transpose_a && !d.transpose_b);
    }

    #[test]
    fn builders_compose() {
        let d = Descriptor::new()
            .with_replace()
            .with_complement_mask()
            .with_transpose_a()
            .with_transpose_b();
        assert!(d.replace && d.complement_mask && d.transpose_a && d.transpose_b);
        assert_eq!(Descriptor::replace(), Descriptor::new().with_replace());
    }
}
