//! Sparse vectors (`GrB_Vector`).
//!
//! A [`Vector`] stores a logically size-`n` vector as parallel arrays of
//! sorted indices and values. Sets of vertices (Sec. II-D) are vectors whose
//! stored entries mark the members.

use crate::error::{check_dims, check_index, GblasError, Info};
use crate::mask::{MaskValue, VectorMask};
use crate::ops::binary::BinaryOp;
use crate::types::Scalar;

/// A sparse vector of logical size `size` holding `nvals` stored entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector<T> {
    size: usize,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Vector<T> {
    /// Create an empty vector of logical size `size` (`GrB_Vector_new`).
    pub fn new(size: usize) -> Self {
        Vector {
            size,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Create a vector from `(index, value)` entries. Entries may be in any
    /// order; duplicate indices are an error (use [`Vector::from_entries_dup`]
    /// to resolve duplicates with an operator, like `GrB_Vector_build`).
    pub fn from_entries(size: usize, entries: Vec<(usize, T)>) -> Info<Self> {
        let mut entries = entries;
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            check_index(i, size)?;
            if indices.last() == Some(&i) {
                return Err(GblasError::InvalidValue(format!(
                    "duplicate index {i} in build without duplicate operator"
                )));
            }
            indices.push(i);
            values.push(v);
        }
        Ok(Vector {
            size,
            indices,
            values,
        })
    }

    /// Like [`Vector::from_entries`], resolving duplicate indices with `dup`
    /// (applied left-to-right in input order, as the C API specifies).
    pub fn from_entries_dup(
        size: usize,
        entries: Vec<(usize, T)>,
        dup: &dyn BinaryOp<T, T, T>,
    ) -> Info<Self> {
        let mut entries = entries;
        entries.sort_by_key(|&(i, _)| i); // stable: preserves input order per index
        let mut indices: Vec<usize> = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            check_index(i, size)?;
            if indices.last() == Some(&i) {
                let last = values.last_mut().expect("values parallel to indices");
                *last = dup.apply(*last, v);
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Ok(Vector {
            size,
            indices,
            values,
        })
    }

    /// Build from a dense slice of options: `Some(v)` is a stored entry.
    pub fn from_dense(dense: &[Option<T>]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in dense.iter().enumerate() {
            if let Some(v) = v {
                indices.push(i);
                values.push(*v);
            }
        }
        Vector {
            size: dense.len(),
            indices,
            values,
        }
    }

    /// Build a fully dense vector where every position holds `value`.
    pub fn full(size: usize, value: T) -> Self {
        Vector {
            size,
            indices: (0..size).collect(),
            values: vec![value; size],
        }
    }

    /// Logical size (`GrB_Vector_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of stored entries (`GrB_Vector_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.indices.len()
    }

    /// True if no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Read the entry at `index`, if stored (`GrB_Vector_extractElement`,
    /// with absence reported as `None` rather than `GrB_NO_VALUE`).
    pub fn get(&self, index: usize) -> Option<T> {
        self.position(index).map(|p| self.values[p])
    }

    /// Store `value` at `index` (`GrB_Vector_setElement`).
    pub fn set(&mut self, index: usize, value: T) -> Info {
        check_index(index, self.size)?;
        match self.indices.binary_search(&index) {
            Ok(p) => self.values[p] = value,
            Err(p) => {
                self.indices.insert(p, index);
                self.values.insert(p, value);
            }
        }
        Ok(())
    }

    /// Delete the entry at `index` if present (`GrB_Vector_removeElement`).
    pub fn remove(&mut self, index: usize) -> Info {
        check_index(index, self.size)?;
        if let Ok(p) = self.indices.binary_search(&index) {
            self.indices.remove(p);
            self.values.remove(p);
        }
        Ok(())
    }

    /// Remove all stored entries (`GrB_Vector_clear`).
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Iterate over stored `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// The sorted stored indices.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The values, parallel to [`Vector::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Convert to a dense `Vec<Option<T>>` of length `size`.
    pub fn to_dense(&self) -> Vec<Option<T>> {
        let mut out = vec![None; self.size];
        for (i, v) in self.iter() {
            out[i] = Some(v);
        }
        out
    }

    /// Convert to a dense `Vec<T>`, filling unstored positions with `fill`.
    pub fn to_dense_with(&self, fill: T) -> Vec<T> {
        let mut out = vec![fill; self.size];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// A value mask over this vector: positions whose stored value is truthy
    /// (`GrB_Vector` used as `mask` parameter).
    pub fn mask(&self) -> VectorMask
    where
        T: MaskValue,
    {
        VectorMask::from_values(self.size, &self.indices, &self.values)
    }

    /// A structural mask: every stored position, regardless of value
    /// (`GrB_STRUCTURE`).
    pub fn structure(&self) -> VectorMask {
        VectorMask::from_structure(self.size, &self.indices)
    }

    /// Resize the logical dimension (`GrB_Vector_resize`): shrinking
    /// drops stored entries at positions `>= new_size`.
    pub fn resize(&mut self, new_size: usize) {
        if new_size < self.size {
            let keep = self.indices.partition_point(|&i| i < new_size);
            self.indices.truncate(keep);
            self.values.truncate(keep);
        }
        self.size = new_size;
    }

    /// Copy out the stored `(index, value)` pairs
    /// (`GrB_Vector_extractTuples`).
    pub fn extract_tuples(&self) -> Vec<(usize, T)> {
        self.iter().collect()
    }

    /// Internal: position of `index` in the stored arrays.
    #[inline]
    pub(crate) fn position(&self, index: usize) -> Option<usize> {
        self.indices.binary_search(&index).ok()
    }

    /// Internal: replace this vector's contents wholesale. `indices` must be
    /// sorted, unique, and in bounds; `values` parallel.
    pub(crate) fn replace_data(&mut self, indices: Vec<usize>, values: Vec<T>) {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&i| i < self.size));
        self.indices = indices;
        self.values = values;
    }

    /// Internal: take the stored arrays out, leaving the vector empty.
    pub(crate) fn take_data(&mut self) -> (Vec<usize>, Vec<T>) {
        (
            std::mem::take(&mut self.indices),
            std::mem::take(&mut self.values),
        )
    }

    /// Check that `other` has the same logical size.
    pub(crate) fn check_same_size(&self, other_size: usize) -> Info {
        check_dims("vector size", self.size, other_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    #[test]
    fn new_is_empty() {
        let v: Vector<f64> = Vector::new(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 0);
        assert!(v.is_empty());
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn set_get_remove() {
        let mut v = Vector::new(5);
        v.set(3, 1.5).unwrap();
        v.set(1, 2.5).unwrap();
        assert_eq!(v.get(3), Some(1.5));
        assert_eq!(v.get(1), Some(2.5));
        assert_eq!(v.nvals(), 2);
        v.set(3, 9.0).unwrap(); // overwrite
        assert_eq!(v.get(3), Some(9.0));
        assert_eq!(v.nvals(), 2);
        v.remove(3).unwrap();
        assert_eq!(v.get(3), None);
        assert_eq!(v.nvals(), 1);
        v.remove(3).unwrap(); // removing absent entry is a no-op
        assert_eq!(v.nvals(), 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut v: Vector<i32> = Vector::new(4);
        assert!(v.set(4, 1).is_err());
        assert!(v.remove(9).is_err());
        assert!(Vector::from_entries(3, vec![(3, 1)]).is_err());
    }

    #[test]
    fn from_entries_sorts() {
        let v = Vector::from_entries(6, vec![(4, 40), (0, 0), (2, 20)]).unwrap();
        assert_eq!(v.indices(), &[0, 2, 4]);
        assert_eq!(v.values(), &[0, 20, 40]);
    }

    #[test]
    fn from_entries_rejects_duplicates() {
        let err = Vector::from_entries(6, vec![(2, 1), (2, 3)]).unwrap_err();
        assert!(matches!(err, GblasError::InvalidValue(_)));
    }

    #[test]
    fn from_entries_dup_combines() {
        let v =
            Vector::from_entries_dup(6, vec![(2, 1), (4, 5), (2, 3)], &Plus::<i32>::new()).unwrap();
        assert_eq!(v.get(2), Some(4));
        assert_eq!(v.get(4), Some(5));
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![Some(1.0), None, Some(3.0), None];
        let v = Vector::from_dense(&dense);
        assert_eq!(v.nvals(), 2);
        assert_eq!(v.to_dense(), dense);
        assert_eq!(v.to_dense_with(0.0), vec![1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn full_vector() {
        let v = Vector::full(3, 7i64);
        assert_eq!(v.nvals(), 3);
        assert_eq!(v.get(2), Some(7));
    }

    #[test]
    fn iter_in_index_order() {
        let v = Vector::from_entries(10, vec![(7, 'c'), (1, 'a'), (3, 'b')]).unwrap();
        let got: Vec<(usize, char)> = v.iter().collect();
        assert_eq!(got, vec![(1, 'a'), (3, 'b'), (7, 'c')]);
    }

    #[test]
    fn clear_empties() {
        let mut v = Vector::from_entries(4, vec![(0, 1), (1, 2)]).unwrap();
        v.clear();
        assert_eq!(v.nvals(), 0);
        assert_eq!(v.size(), 4);
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut v = Vector::from_entries(6, vec![(1, 10), (4, 40)]).unwrap();
        v.resize(3);
        assert_eq!(v.size(), 3);
        assert_eq!(v.nvals(), 1);
        assert_eq!(v.get(1), Some(10));
        v.resize(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 1);
        v.set(9, 90).unwrap();
        assert_eq!(v.get(9), Some(90));
    }

    #[test]
    fn extract_tuples_round_trip() {
        let v = Vector::from_entries(5, vec![(0, 1), (3, 2)]).unwrap();
        let tuples = v.extract_tuples();
        assert_eq!(tuples, vec![(0, 1), (3, 2)]);
        let back = Vector::from_entries(5, tuples).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn zero_size_vector() {
        let v: Vector<f64> = Vector::new(0);
        assert_eq!(v.size(), 0);
        assert!(v.get(0).is_none());
    }
}
