//! Write masks.
//!
//! GraphBLAS masks control which output positions an operation may write.
//! Here a mask is *pre-evaluated* at construction into the set of allowed
//! positions: [`VectorMask`] from a vector's truthy values
//! ([`crate::Vector::mask`]) or its structure ([`crate::Vector::structure`]),
//! and [`MatrixMask`] likewise from a matrix. Complementing is requested per
//! call through [`crate::Descriptor::complement_mask`], so one mask object
//! can serve both polarities.

use crate::matrix::Matrix;
use crate::types::Scalar;

/// Types usable as mask values: the mask allows a position iff the stored
/// value is "truthy" (non-zero / `true`), matching GraphBLAS typecast-to-bool.
pub trait MaskValue: Scalar {
    /// GraphBLAS truthiness of this value.
    fn is_truthy(&self) -> bool;
}

impl MaskValue for bool {
    #[inline]
    fn is_truthy(&self) -> bool {
        *self
    }
}

macro_rules! impl_mask_value_num {
    ($zero:expr => $($t:ty),*) => {$(
        impl MaskValue for $t {
            #[inline]
            fn is_truthy(&self) -> bool {
                *self != $zero
            }
        }
    )*};
}
impl_mask_value_num!(0 => i8, i16, i32, i64, u8, u16, u32, u64, usize);
impl_mask_value_num!(0.0 => f32, f64);

/// A pre-evaluated vector mask: the sorted set of positions the mask allows
/// (before any per-call complement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorMask {
    size: usize,
    allowed: Vec<usize>,
}

impl VectorMask {
    /// Build from a sparse vector's values: allowed where truthy.
    pub(crate) fn from_values<T: MaskValue>(
        size: usize,
        indices: &[usize],
        values: &[T],
    ) -> Self {
        let allowed = indices
            .iter()
            .zip(values.iter())
            .filter(|(_, v)| v.is_truthy())
            .map(|(&i, _)| i)
            .collect();
        VectorMask { size, allowed }
    }

    /// Build from a sparse vector's structure: allowed where stored.
    pub(crate) fn from_structure(size: usize, indices: &[usize]) -> Self {
        VectorMask {
            size,
            allowed: indices.to_vec(),
        }
    }

    /// Logical size of the masked dimension.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the (uncomplemented) mask allows position `i`.
    #[inline]
    pub fn allows(&self, i: usize) -> bool {
        self.allowed.binary_search(&i).is_ok()
    }

    /// Whether the mask, complemented per `complement`, allows position `i`.
    #[inline]
    pub fn allows_with(&self, i: usize, complement: bool) -> bool {
        self.allows(i) != complement
    }

    /// The sorted allowed positions (before complement).
    #[inline]
    pub fn allowed(&self) -> &[usize] {
        &self.allowed
    }

    /// Number of allowed positions (before complement).
    #[inline]
    pub fn nallowed(&self) -> usize {
        self.allowed.len()
    }
}

/// A pre-evaluated matrix mask in CSR-like form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixMask {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl MatrixMask {
    /// Build from a matrix's values: allowed where truthy.
    pub(crate) fn from_values<T: MaskValue>(m: &Matrix<T>) -> Self {
        let mut row_ptr = vec![0usize; m.nrows() + 1];
        let mut col_idx = Vec::new();
        for r in 0..m.nrows() {
            let (cols, vals) = m.row(r);
            for (&c, v) in cols.iter().zip(vals.iter()) {
                if v.is_truthy() {
                    col_idx.push(c);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        MatrixMask {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr,
            col_idx,
        }
    }

    /// Build from a matrix's structure: allowed where stored.
    pub(crate) fn from_structure<T: Scalar>(m: &Matrix<T>) -> Self {
        MatrixMask {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr: m.row_ptr().to_vec(),
            col_idx: m.col_indices().to_vec(),
        }
    }

    /// Number of rows of the masked matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the masked matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The sorted allowed columns of row `r` (before complement).
    #[inline]
    pub fn row(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Whether the (uncomplemented) mask allows `(r, c)`.
    #[inline]
    pub fn allows(&self, r: usize, c: usize) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Whether the mask, complemented per `complement`, allows `(r, c)`.
    #[inline]
    pub fn allows_with(&self, r: usize, c: usize, complement: bool) -> bool {
        self.allows(r, c) != complement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    #[test]
    fn value_mask_keeps_truthy_only() {
        let v = Vector::from_entries(6, vec![(0, 0.0f64), (2, 1.5), (4, -3.0)]).unwrap();
        let m = v.mask();
        assert!(!m.allows(0)); // stored but zero
        assert!(m.allows(2));
        assert!(m.allows(4));
        assert!(!m.allows(1)); // absent
        assert_eq!(m.nallowed(), 2);
    }

    #[test]
    fn structural_mask_keeps_all_stored() {
        let v = Vector::from_entries(6, vec![(0, 0.0f64), (2, 1.5)]).unwrap();
        let m = v.structure();
        assert!(m.allows(0));
        assert!(m.allows(2));
        assert!(!m.allows(1));
    }

    #[test]
    fn complement_flips() {
        let v = Vector::from_entries(4, vec![(1, true)]).unwrap();
        let m = v.mask();
        assert!(m.allows_with(1, false));
        assert!(!m.allows_with(1, true));
        assert!(!m.allows_with(0, false));
        assert!(m.allows_with(0, true));
    }

    #[test]
    fn bool_and_int_truthiness() {
        assert!(true.is_truthy());
        assert!(!false.is_truthy());
        assert!(7i32.is_truthy());
        assert!(!0u8.is_truthy());
        assert!((0.5f32).is_truthy());
        assert!(!(0.0f64).is_truthy());
    }

    #[test]
    fn matrix_masks() {
        let m = Matrix::from_triples(2, 3, vec![(0, 1, 0.0f64), (0, 2, 2.0), (1, 0, 5.0)]).unwrap();
        let vm = m.mask();
        assert!(!vm.allows(0, 1)); // zero value
        assert!(vm.allows(0, 2));
        assert!(vm.allows(1, 0));
        let sm = m.structure();
        assert!(sm.allows(0, 1));
        assert!(!sm.allows(1, 1));
        assert!(sm.allows_with(1, 1, true));
        assert_eq!(sm.nrows(), 2);
        assert_eq!(sm.ncols(), 3);
    }
}
