//! Error handling, mirroring the `GrB_Info` return codes of the C API.

use std::fmt;

/// The error half of [`Info`]; corresponds to the non-success `GrB_Info`
/// codes of the GraphBLAS C API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GblasError {
    /// Object dimensions are incompatible for the requested operation
    /// (`GrB_DIMENSION_MISMATCH`).
    DimensionMismatch {
        /// What the operation expected, e.g. `"input size 5"`.
        expected: String,
        /// What it was given.
        found: String,
    },
    /// An index is outside the bounds of its vector or matrix
    /// (`GrB_INDEX_OUT_OF_BOUNDS`).
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension it was checked against.
        bound: usize,
    },
    /// A requested element is not stored (`GrB_NO_VALUE`).
    NoValue,
    /// An argument value is invalid, e.g. duplicate build indices without a
    /// duplicate-resolution operator (`GrB_INVALID_VALUE`).
    InvalidValue(String),
}

impl GblasError {
    /// Convenience constructor for dimension mismatches.
    pub fn dims(expected: impl Into<String>, found: impl Into<String>) -> Self {
        GblasError::DimensionMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for GblasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GblasError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            GblasError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (dimension {bound})")
            }
            GblasError::NoValue => write!(f, "no value stored at the requested position"),
            GblasError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for GblasError {}

/// Result alias used by every fallible GraphBLAS operation (the `GrB_Info`
/// convention).
pub type Info<T = ()> = Result<T, GblasError>;

/// Check that `index < bound`, mirroring the C API's index validation.
#[inline]
pub(crate) fn check_index(index: usize, bound: usize) -> Info {
    if index < bound {
        Ok(())
    } else {
        Err(GblasError::IndexOutOfBounds { index, bound })
    }
}

/// Check that two dimensions agree.
#[inline]
pub(crate) fn check_dims(what: &str, expected: usize, found: usize) -> Info {
    if expected == found {
        Ok(())
    } else {
        Err(GblasError::dims(
            format!("{what} = {expected}"),
            format!("{what} = {found}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GblasError::dims("size 4", "size 5");
        assert!(e.to_string().contains("expected size 4"));
        let e = GblasError::IndexOutOfBounds { index: 9, bound: 3 };
        assert_eq!(e.to_string(), "index 9 out of bounds (dimension 3)");
        assert!(GblasError::NoValue.to_string().contains("no value"));
        assert!(GblasError::InvalidValue("dup".into()).to_string().contains("dup"));
    }

    #[test]
    fn check_helpers() {
        assert!(check_index(2, 3).is_ok());
        assert!(check_index(3, 3).is_err());
        assert!(check_dims("size", 4, 4).is_ok());
        assert!(check_dims("size", 4, 5).is_err());
    }
}
