//! Repo-invariant lints for the sssp workspace, enforced in CI.
//!
//! Seven invariants, all checked by plain line-level source scanning (no
//! external parser — the scans are deliberately syntactic so the tool
//! has zero dependencies and sub-second runtime):
//!
//! 1. **`safety-comment`** — every `unsafe` block, fn, or impl carries a
//!    `SAFETY:` justification (same line, or in the contiguous
//!    comment/attribute block directly above, or a `# Safety` doc
//!    section).
//! 2. **`atomic-ordering`** — every `Ordering::{Relaxed, Acquire,
//!    Release, AcqRel, SeqCst}` site is accounted for, with a one-line
//!    reason, in `analyze/atomics.toml`. Counts are exact per
//!    `(file, ordering)`, so adding *or removing* an atomic op forces a
//!    human to re-justify the file's ordering story. `std::cmp::Ordering`
//!    match arms (`Less`/`Equal`/`Greater`) never match the pattern and
//!    are out of scope by construction.
//! 3. **`hot-path-lock`** — no `Mutex`/`RwLock` in the relaxation hot
//!    paths (`crates/core/src/parallel*`, `crates/core/src/reqbuf.rs`,
//!    `crates/gblas/src/parallel/`) or the resident service
//!    (`crates/serve/src/`). Deliberate uses are suppressed with a
//!    `lint:allow(hot-path-lock): <reason>` comment on the same or the
//!    preceding line.
//! 4. **`impl-coverage`** — every name accepted by
//!    `Implementation::parse` maps to a variant dispatched inside
//!    `run_with_budget`, and every canonical `name()` string appears as
//!    a literal in `tests/determinism.rs`, so no implementation can be
//!    reachable from the CLI without being in the determinism suite.
//! 5. **`wire-code-coverage`** — the resident service's
//!    `SsspError`-to-wire-code mapping (`wire_code` in
//!    `crates/serve/src/protocol.rs`) names every `SsspError` variant
//!    explicitly and has no wildcard `_ =>` arm, so adding a solver
//!    error forces a deliberate wire-code assignment.
//! 6. **`opcode-coverage`** — every wire opcode declared as a
//!    `pub const NAME: u8` inside `pub mod opcode`
//!    (`crates/serve/src/protocol.rs`) is referenced as `opcode::NAME`
//!    at least twice outside the mod — in practice the encode arm and
//!    the decode arm — so an opcode cannot be minted without both
//!    directions of the frame codec handling it.
//! 7. **`lock-order`** — the resident service's locks form a declared
//!    total order (`analyze/locks.toml`): every `Mutex`/`RwLock` field
//!    under `crates/serve/src/` maps to a hierarchy level, acquisitions
//!    go through `lock::recover("<name>", ...)` (never a bare
//!    `.lock()`), and no site acquires a lock at or below the level of
//!    a guard it already holds. Deliberate inversions carry a
//!    `LOCKORDER: <reason>` comment. The static half of the deadlock
//!    story — racecheck's acquisition-order graph is the dynamic half.
//!
//! Scanned roots: `crates/`, `src/`, `tests/`, `examples/`. Excluded:
//! `vendor/` (third-party stubs), `target/`, and `crates/analyze` itself
//! (this crate's fixtures intentionally contain violations).
//!
//! Known syntactic limits, acceptable for this repo: `/* block */`
//! comments and raw strings are not modelled (the workspace uses line
//! comments and ordinary string literals throughout — the repo-clean
//! self-test keeps that true).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation, addressed by repo-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A source file loaded for scanning: repo-relative path + raw lines.
pub struct SourceFile {
    pub rel: String,
    pub lines: Vec<String>,
}

impl SourceFile {
    pub fn from_str(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            lines: src.lines().map(str::to_string).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Line-level helpers
// ---------------------------------------------------------------------------

/// The code part of a line: the `// comment` tail removed and string
/// literal *contents* blanked to spaces, so identifier searches can
/// never match inside comments or strings. `'` is left alone (it is
/// almost always a lifetime); none of the searched identifiers can
/// appear in a char literal.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                    out.push(' ');
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => out.push(' '),
            }
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push('"');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `word` in `code` at identifier boundaries. `word` may
/// itself contain `::`; only its outer edges are boundary-checked.
fn count_word(code: &str, word: &str) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let i = from + pos;
        let j = i + word.len();
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after_ok = j >= bytes.len() || !is_ident_byte(bytes[j]);
        if before_ok && after_ok {
            n += 1;
        }
        from = j;
    }
    n
}

fn has_word(code: &str, word: &str) -> bool {
    count_word(code, word) > 0
}

/// Whether `line` is part of a comment/attribute block (what we are
/// willing to walk back through when looking for a SAFETY note).
fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") || t == ")]"
}

// ---------------------------------------------------------------------------
// Lint 1: SAFETY comments on unsafe
// ---------------------------------------------------------------------------

const SAFETY_MARKERS: [&str; 2] = ["SAFETY:", "# Safety"];

fn line_has_safety_marker(raw: &str) -> bool {
    SAFETY_MARKERS.iter().any(|m| raw.contains(m))
}

/// Every `unsafe` keyword in code must have a `SAFETY:` (or `# Safety`
/// doc section) on the same line or in the contiguous comment/attribute
/// block directly above it.
pub fn lint_safety(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, raw) in f.lines.iter().enumerate() {
        if !has_word(&code_portion(raw), "unsafe") {
            continue;
        }
        if line_has_safety_marker(raw) {
            continue;
        }
        let mut justified = false;
        let mut j = idx;
        while j > 0 && is_comment_or_attr(&f.lines[j - 1]) {
            j -= 1;
            if line_has_safety_marker(&f.lines[j]) {
                justified = true;
                break;
            }
        }
        if !justified {
            out.push(Finding {
                file: f.rel.clone(),
                line: idx + 1,
                lint: "safety-comment",
                message: "`unsafe` without a SAFETY: justification on the same line \
                          or in the comment block above"
                    .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 2: atomic-ordering allowlist
// ---------------------------------------------------------------------------

pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Count `Ordering::<variant>` sites in one file, keyed by variant name.
pub fn count_atomics(f: &SourceFile) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for raw in &f.lines {
        let code = code_portion(raw);
        for ord in ATOMIC_ORDERINGS {
            let n = count_word(&code, &format!("Ordering::{ord}"));
            if n > 0 {
                *counts.entry(ord.to_string()).or_insert(0) += n;
            }
        }
    }
    counts
}

/// One `[[site]]` entry from `analyze/atomics.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    pub file: String,
    pub ordering: String,
    pub count: usize,
    pub reason: String,
    /// 1-based line of the `[[site]]` header in the allowlist, so stale
    /// entries are reported at the entry to delete.
    pub line: usize,
}

/// Parse the TOML subset used by `analyze/atomics.toml`: comments,
/// blank lines, `[[site]]` headers, and `key = value` pairs where value
/// is a quoted string or an integer. Anything else is an error — the
/// allowlist is a lint input and must not silently half-parse.
pub fn parse_allowlist(src: &str) -> Result<Vec<AtomicSite>, String> {
    struct Partial {
        file: Option<String>,
        ordering: Option<String>,
        count: Option<usize>,
        reason: Option<String>,
        line: usize,
    }
    fn finish(p: Partial) -> Result<AtomicSite, String> {
        let at = format!("[[site]] at line {}", p.line);
        let site = AtomicSite {
            file: p.file.ok_or(format!("{at}: missing `file`"))?,
            ordering: p.ordering.ok_or(format!("{at}: missing `ordering`"))?,
            count: p.count.ok_or(format!("{at}: missing `count`"))?,
            reason: p.reason.ok_or(format!("{at}: missing `reason`"))?,
            line: p.line,
        };
        if site.reason.trim().is_empty() {
            return Err(format!("{at}: `reason` must not be empty"));
        }
        // A placeholder reason defeats the lint's whole purpose: every
        // entry must say why that ordering is sufficient at that site.
        if site.reason.trim().starts_with("TODO") {
            return Err(format!(
                "{at}: `reason` is a TODO placeholder — write why `{}` is \
                 sufficient for the {} site(s) in {}",
                site.ordering, site.count, site.file
            ));
        }
        if !ATOMIC_ORDERINGS.contains(&site.ordering.as_str()) {
            return Err(format!("{at}: unknown ordering `{}`", site.ordering));
        }
        Ok(site)
    }

    let mut sites = Vec::new();
    let mut cur: Option<Partial> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[site]]" {
            if let Some(p) = cur.take() {
                sites.push(finish(p)?);
            }
            cur = Some(Partial {
                file: None,
                ordering: None,
                count: None,
                reason: None,
                line: idx + 1,
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {}: expected `key = value`", idx + 1))?;
        let p = cur
            .as_mut()
            .ok_or(format!("line {}: key before any [[site]]", idx + 1))?;
        let value = value.trim();
        let parsed_str = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(str::to_string);
        match key.trim() {
            "file" => {
                p.file =
                    Some(parsed_str.ok_or(format!("line {}: `file` must be quoted", idx + 1))?)
            }
            "ordering" => {
                p.ordering = Some(
                    parsed_str.ok_or(format!("line {}: `ordering` must be quoted", idx + 1))?,
                )
            }
            "reason" => {
                p.reason =
                    Some(parsed_str.ok_or(format!("line {}: `reason` must be quoted", idx + 1))?)
            }
            "count" => {
                p.count = Some(
                    value
                        .parse()
                        .map_err(|_| format!("line {}: `count` must be an integer", idx + 1))?,
                )
            }
            other => return Err(format!("line {}: unknown key `{other}`", idx + 1)),
        }
    }
    if let Some(p) = cur.take() {
        sites.push(finish(p)?);
    }
    Ok(sites)
}

/// Compare observed `Ordering::` sites against the allowlist: unlisted
/// sites, count drift, and stale entries are all findings.
pub fn lint_atomics(files: &[SourceFile], allowlist_src: &str) -> Vec<Finding> {
    let sites = match parse_allowlist(allowlist_src) {
        Ok(s) => s,
        Err(e) => {
            return vec![Finding {
                file: "analyze/atomics.toml".to_string(),
                line: 0,
                lint: "atomic-ordering",
                message: format!("allowlist parse error: {e}"),
            }]
        }
    };
    // (total count, line of the first [[site]] header) per (file, ordering).
    let mut allowed: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for s in &sites {
        let e = allowed
            .entry((s.file.clone(), s.ordering.clone()))
            .or_insert((0, s.line));
        e.0 += s.count;
    }
    let mut observed: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in files {
        for (ord, n) in count_atomics(f) {
            observed.insert((f.rel.clone(), ord), n);
        }
    }
    // First source line mentioning `Ordering::<ord>`, so a finding
    // points at an actual site rather than line 0.
    let first_site_line = |file: &str, ord: &str| -> usize {
        let needle = format!("Ordering::{ord}");
        files
            .iter()
            .find(|f| f.rel == file)
            .and_then(|f| {
                f.lines
                    .iter()
                    .position(|raw| has_word(&code_portion(raw), &needle))
            })
            .map_or(0, |idx| idx + 1)
    };

    let mut out = Vec::new();
    for ((file, ord), n) in &observed {
        match allowed.get(&(file.clone(), ord.clone())) {
            None => out.push(Finding {
                file: file.clone(),
                line: first_site_line(file, ord),
                lint: "atomic-ordering",
                message: format!(
                    "{n} `Ordering::{ord}` site(s) not justified in analyze/atomics.toml"
                ),
            }),
            Some((a, _)) if a != n => out.push(Finding {
                file: file.clone(),
                line: first_site_line(file, ord),
                lint: "atomic-ordering",
                message: format!(
                    "`Ordering::{ord}` count drifted: {n} in source, {a} justified — \
                     re-audit and update analyze/atomics.toml"
                ),
            }),
            Some(_) => {}
        }
    }
    for ((file, ord), (a, entry_line)) in &allowed {
        if !observed.contains_key(&(file.clone(), ord.clone())) {
            out.push(Finding {
                file: "analyze/atomics.toml".to_string(),
                line: *entry_line,
                lint: "atomic-ordering",
                message: format!(
                    "stale entry: {file} has no `Ordering::{ord}` sites (justifies {a})"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 3: hot-path lock ban
// ---------------------------------------------------------------------------

const HOT_PATH_SUPPRESSION: &str = "lint:allow(hot-path-lock)";

/// Hot-path modules where a blocking lock is a design violation: the
/// request-buffer relaxation core, the parallel kernels, the
/// generalized stepping loop, and the resident service (whose locks
/// must all be request-rate control state, never per-edge — each
/// deliberate one carries its reason).
pub fn is_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/core/src/parallel")
        || rel == "crates/core/src/reqbuf.rs"
        || rel == "crates/core/src/pull.rs"
        || rel == "crates/core/src/stepping.rs"
        || rel.starts_with("crates/gblas/src/parallel")
        || rel == "crates/gblas/src/direction.rs"
        || rel.starts_with("crates/serve/src/")
}

/// `Mutex`/`RwLock` in a hot-path file must carry an explicit
/// `lint:allow(hot-path-lock): <reason>` on the same or previous line.
pub fn lint_hot_path_locks(f: &SourceFile) -> Vec<Finding> {
    if !is_hot_path(&f.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, raw) in f.lines.iter().enumerate() {
        let code = code_portion(raw);
        let hit = ["Mutex", "RwLock"]
            .into_iter()
            .find(|w| has_word(&code, w));
        let Some(word) = hit else { continue };
        let mut suppressed = raw.contains(HOT_PATH_SUPPRESSION);
        let mut j = idx;
        while !suppressed && j > 0 && is_comment_or_attr(&f.lines[j - 1]) {
            j -= 1;
            suppressed = f.lines[j].contains(HOT_PATH_SUPPRESSION);
        }
        if !suppressed {
            out.push(Finding {
                file: f.rel.clone(),
                line: idx + 1,
                lint: "hot-path-lock",
                message: format!(
                    "`{word}` in a hot-path module — relaxation paths are contention-free \
                     by design; add `{HOT_PATH_SUPPRESSION}: <reason>` if deliberate"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 4: implementation dispatch / determinism coverage
// ---------------------------------------------------------------------------

/// 1-based line of the first line containing `marker`, or 0 when the
/// marker is absent — so structural findings can point at the construct
/// they are about instead of line 0.
fn marker_line(f: &SourceFile, marker: &str) -> usize {
    f.lines
        .iter()
        .position(|l| l.contains(marker))
        .map_or(0, |idx| idx + 1)
}

/// Concatenated code of the `{ ... }` block opened by the first line at
/// or after `start` containing `marker`. Empty string when not found.
fn block_after(f: &SourceFile, marker: &str) -> String {
    let Some(start) = f.lines.iter().position(|l| l.contains(marker)) else {
        return String::new();
    };
    let mut depth = 0usize;
    let mut seen_open = false;
    let mut body = String::new();
    for raw in &f.lines[start..] {
        let code = code_portion(raw);
        body.push_str(&code);
        body.push('\n');
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if seen_open && depth == 0 {
            break;
        }
    }
    body
}

/// Quoted string literals occurring on `=>` match-arm lines of a block.
fn arm_literals(block: &str) -> Vec<(Vec<String>, String)> {
    let mut out = Vec::new();
    for line in block.lines() {
        let Some((lhs, rhs)) = line.split_once("=>") else {
            continue;
        };
        let mut lits = Vec::new();
        let mut rest = lhs;
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('"') else { break };
            lits.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
        if !lits.is_empty() {
            out.push((lits, rhs.trim().to_string()));
        }
    }
    out
}

/// Check the `Implementation` front door in `run.rs` against the
/// determinism suite:
///
/// - every enum variant is dispatched (`Implementation::<V>` appears in
///   the `run_with_budget` body);
/// - every `parse()` alias maps to a dispatched variant;
/// - every canonical `name()` literal appears quoted in
///   `tests/determinism.rs`.
///
/// NB: `arm_literals` reads *raw* lines from the parse/name blocks, so
/// this helper takes the raw source and re-slices it.
pub fn lint_impl_coverage(run_rs: &SourceFile, determinism_src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut finding = |line: usize, message: String| {
        out.push(Finding {
            file: run_rs.rel.clone(),
            line,
            lint: "impl-coverage",
            message,
        });
    };
    let enum_line = marker_line(run_rs, "pub enum Implementation");
    let dispatch_line = marker_line(run_rs, "pub fn run_with_budget");
    let parse_line = marker_line(run_rs, "pub fn parse");
    let name_line = marker_line(run_rs, "pub fn name");

    // Enum variants.
    let enum_block = block_after(run_rs, "pub enum Implementation");
    let mut variants: Vec<String> = Vec::new();
    for line in enum_block.lines().skip(1) {
        let t = line.trim().trim_end_matches(',');
        if !t.is_empty()
            && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && t.chars().all(|c| c.is_ascii_alphanumeric())
        {
            variants.push(t.to_string());
        }
    }
    if variants.is_empty() {
        finding(enum_line, "could not locate `pub enum Implementation` variants".to_string());
        return out;
    }

    // Dispatch body.
    let dispatch = block_after(run_rs, "pub fn run_with_budget");
    if dispatch.is_empty() {
        finding(dispatch_line, "could not locate `pub fn run_with_budget`".to_string());
        return out;
    }
    for v in &variants {
        if !has_word(&dispatch, &format!("Implementation::{v}")) {
            finding(dispatch_line, format!(
                "variant `{v}` is not dispatched inside run_with_budget"
            ));
        }
    }

    // parse() aliases — raw lines needed for the string literals, so
    // rebuild a raw block: from the `pub fn parse` line to its close.
    let raw_src = run_rs.lines.join("\n");
    let parse_raw = raw_block(&raw_src, "pub fn parse");
    let mut any_alias = false;
    for (aliases, rhs) in arm_literals(&parse_raw) {
        let Some(vstart) = rhs.find("Implementation::") else {
            continue;
        };
        let v: String = rhs[vstart + "Implementation::".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        any_alias = true;
        if !variants.contains(&v) {
            finding(parse_line, format!(
                "parse() aliases {aliases:?} map to unknown variant `{v}`"
            ));
        } else if !has_word(&dispatch, &format!("Implementation::{v}")) {
            finding(parse_line, format!(
                "parse() aliases {aliases:?} reach `{v}`, which run_with_budget never dispatches"
            ));
        }
    }
    if !any_alias {
        finding(parse_line, "could not locate parse() name aliases".to_string());
    }

    // name() canonical strings must be pinned in the determinism suite.
    let name_raw = raw_block(&raw_src, "pub fn name");
    let mut any_name = false;
    for (lits, _) in arm_literals(&name_raw) {
        // name() arms are `Variant => "literal"`, so the literal is on
        // the rhs; arm_literals keyed on lhs literals skips them.
        let _ = lits;
    }
    for line in name_raw.lines() {
        let Some((_, rhs)) = line.split_once("=>") else {
            continue;
        };
        let Some(open) = rhs.find('"') else { continue };
        let tail = &rhs[open + 1..];
        let Some(close) = tail.find('"') else { continue };
        let name = &tail[..close];
        any_name = true;
        if !determinism_src.contains(&format!("\"{name}\"")) {
            finding(name_line, format!(
                "canonical name \"{name}\" is not covered as a literal in tests/determinism.rs"
            ));
        }
    }
    if !any_name {
        finding(name_line, "could not locate name() canonical strings".to_string());
    }
    out
}

/// Raw-text variant of [`block_after`]: lines from the one containing
/// `marker` through the line where its brace block closes.
fn raw_block(src: &str, marker: &str) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let Some(start) = lines.iter().position(|l| l.contains(marker)) else {
        return String::new();
    };
    let mut depth = 0usize;
    let mut seen_open = false;
    let mut out = String::new();
    for raw in &lines[start..] {
        out.push_str(raw);
        out.push('\n');
        for c in code_portion(raw).chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if seen_open && depth == 0 {
            break;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 5: SsspError ↔ wire-code mapping exhaustiveness
// ---------------------------------------------------------------------------

/// Variant names of the enum opened by `marker` in `f`: identifiers at
/// brace depth 1 that start a (comment-stripped) line with an uppercase
/// letter. Struct-variant field lines sit at depth 2 and are skipped.
fn enum_variants_of(f: &SourceFile, marker: &str) -> Vec<String> {
    let block = block_after(f, marker);
    let mut depth = 0usize;
    let mut out = Vec::new();
    for line in block.lines() {
        let t = line.trim();
        if depth == 1 {
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.push(name);
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

/// The serve protocol's `wire_code` mapping must stay exhaustive over
/// [`SsspError`]: every variant of the enum in `guard_rs` appears as an
/// `SsspError::<V>` arm inside `pub fn wire_code` in `wire_rs`, and the
/// match has **no** wildcard `_ =>` arm (which would silently bucket a
/// future variant instead of forcing a new wire code).
pub fn lint_wire_codes(guard_rs: &SourceFile, wire_rs: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut finding = |file: &str, line: usize, message: String| {
        out.push(Finding {
            file: file.to_string(),
            line,
            lint: "wire-code-coverage",
            message,
        });
    };
    let fn_line = marker_line(wire_rs, "pub fn wire_code");

    let variants = enum_variants_of(guard_rs, "pub enum SsspError");
    if variants.is_empty() {
        finding(
            &guard_rs.rel,
            marker_line(guard_rs, "pub enum SsspError"),
            "could not locate `pub enum SsspError` variants".into(),
        );
        return out;
    }
    let Some((start, end)) = block_span(wire_rs, "pub fn wire_code") else {
        finding(
            &wire_rs.rel,
            0,
            "could not locate `pub fn wire_code` — the SsspError wire mapping is gone".into(),
        );
        return out;
    };
    let body = block_after(wire_rs, "pub fn wire_code");
    for v in &variants {
        if !has_word(&body, &format!("SsspError::{v}")) {
            finding(
                &wire_rs.rel,
                fn_line,
                format!("`SsspError::{v}` has no arm in wire_code — assign it a wire code"),
            );
        }
    }
    for (off, raw) in wire_rs.lines[start..end].iter().enumerate() {
        let code = code_portion(raw);
        let Some((lhs, _)) = code.split_once("=>") else { continue };
        if lhs.trim() == "_" {
            finding(
                &wire_rs.rel,
                start + off + 1,
                "wire_code has a wildcard `_ =>` arm — new SsspError variants must fail \
                 to compile here, not silently share a code"
                    .into(),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 6: wire opcode reference coverage
// ---------------------------------------------------------------------------

/// Line span (0-based start, exclusive end) of the brace block opened
/// by the first line containing `marker`, or `None` when absent.
fn block_span(f: &SourceFile, marker: &str) -> Option<(usize, usize)> {
    let start = f.lines.iter().position(|l| l.contains(marker))?;
    let mut depth = 0usize;
    let mut seen_open = false;
    for (off, raw) in f.lines[start..].iter().enumerate() {
        for c in code_portion(raw).chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if seen_open && depth == 0 {
            return Some((start, start + off + 1));
        }
    }
    None
}

/// Every wire opcode declared in `pub mod opcode` must be *handled*:
/// each `pub const NAME: u8` needs at least two `opcode::NAME`
/// references outside the mod itself — in practice the encode arm and
/// the decode arm of the frame codec — so a new opcode (like `HEALTH`
/// or `DRAIN`) can never be declared without both directions of the
/// binary framing knowing about it.
pub fn lint_opcode_coverage(protocol_rs: &SourceFile, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((start, end)) = block_span(protocol_rs, "pub mod opcode") else {
        return vec![Finding {
            file: protocol_rs.rel.clone(),
            line: 0,
            lint: "opcode-coverage",
            message: "could not locate `pub mod opcode` — the wire opcode table is gone".into(),
        }];
    };

    // Declared opcodes: `pub const NAME: u8 = ...;` lines inside the mod.
    let mut opcodes: Vec<(String, usize)> = Vec::new();
    for (off, raw) in protocol_rs.lines[start..end].iter().enumerate() {
        let code = code_portion(raw);
        let t = code.trim_start();
        let Some(rest) = t.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, ty)) = rest.split_once(':') else {
            continue;
        };
        if ty.trim_start().starts_with("u8") {
            opcodes.push((name.trim().to_string(), start + off + 1));
        }
    }
    if opcodes.is_empty() {
        return vec![Finding {
            file: protocol_rs.rel.clone(),
            line: start + 1,
            lint: "opcode-coverage",
            message: "`pub mod opcode` declares no `pub const NAME: u8` opcodes".into(),
        }];
    }

    for (name, decl_line) in opcodes {
        let needle = format!("opcode::{name}");
        let mut refs = 0usize;
        for f in files {
            for (idx, raw) in f.lines.iter().enumerate() {
                if f.rel == protocol_rs.rel && idx >= start && idx < end {
                    continue; // the declaration itself is not a use
                }
                refs += count_word(&code_portion(raw), &needle);
            }
        }
        if refs < 2 {
            out.push(Finding {
                file: protocol_rs.rel.clone(),
                line: decl_line,
                lint: "opcode-coverage",
                message: format!(
                    "wire opcode `{name}` has {refs} `opcode::{name}` reference(s) outside \
                     the mod — both the encode and decode arms of the frame codec (≥2 uses) \
                     must handle it"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 7: serve-layer lock hierarchy
// ---------------------------------------------------------------------------

/// Escape hatch for a deliberate ordering inversion: a `LOCKORDER:
/// <reason>` comment on the acquisition line or the contiguous comment
/// block above it suppresses the violation (the guard is still tracked,
/// so locks taken *under* it keep being checked).
pub const LOCK_ORDER_SUPPRESSION: &str = "LOCKORDER:";

/// One `[[lock]]` entry from `analyze/locks.toml`: a named lock field
/// with its position in the total acquisition order (lower levels are
/// acquired first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDecl {
    /// The name passed to `lock::recover("<name>", ...)` at every
    /// acquisition site.
    pub name: String,
    /// Repo-relative file declaring the field.
    pub file: String,
    /// The struct field holding the `Mutex`/`RwLock`.
    pub field: String,
    /// Hierarchy level; a thread holding level L may only acquire
    /// strictly greater levels.
    pub level: u32,
    /// Why the lock sits at this level.
    pub reason: String,
    /// 1-based line of the `[[lock]]` header in the order file.
    pub line: usize,
}

/// Parse `analyze/locks.toml` (same TOML subset as [`parse_allowlist`]):
/// `[[lock]]` sections with `name`/`file`/`field` strings, an integer
/// `level`, and a non-placeholder `reason`. Names, levels, and
/// `(file, field)` pairs must all be unique — the file declares a total
/// order, and two locks on one level would make "strictly greater"
/// unsatisfiable for a legitimate nesting.
pub fn parse_lock_order(src: &str) -> Result<Vec<LockDecl>, String> {
    struct Partial {
        name: Option<String>,
        file: Option<String>,
        field: Option<String>,
        level: Option<u32>,
        reason: Option<String>,
        line: usize,
    }
    fn finish(p: Partial) -> Result<LockDecl, String> {
        let at = format!("[[lock]] at line {}", p.line);
        let decl = LockDecl {
            name: p.name.ok_or(format!("{at}: missing `name`"))?,
            file: p.file.ok_or(format!("{at}: missing `file`"))?,
            field: p.field.ok_or(format!("{at}: missing `field`"))?,
            level: p.level.ok_or(format!("{at}: missing `level`"))?,
            reason: p.reason.ok_or(format!("{at}: missing `reason`"))?,
            line: p.line,
        };
        if decl.reason.trim().is_empty() {
            return Err(format!("{at}: `reason` must not be empty"));
        }
        if decl.reason.trim().starts_with("TODO") {
            return Err(format!(
                "{at}: `reason` is a TODO placeholder — write why `{}` sits at level {}",
                decl.name, decl.level
            ));
        }
        Ok(decl)
    }

    let mut decls: Vec<LockDecl> = Vec::new();
    let mut cur: Option<Partial> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[lock]]" {
            if let Some(p) = cur.take() {
                decls.push(finish(p)?);
            }
            cur = Some(Partial {
                name: None,
                file: None,
                field: None,
                level: None,
                reason: None,
                line: idx + 1,
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {}: expected `key = value`", idx + 1))?;
        let p = cur
            .as_mut()
            .ok_or(format!("line {}: key before any [[lock]]", idx + 1))?;
        let value = value.trim();
        let parsed_str = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(str::to_string);
        let key = key.trim();
        match key {
            "name" | "file" | "field" | "reason" => {
                let v = parsed_str.ok_or(format!("line {}: `{key}` must be quoted", idx + 1))?;
                match key {
                    "name" => p.name = Some(v),
                    "file" => p.file = Some(v),
                    "field" => p.field = Some(v),
                    _ => p.reason = Some(v),
                }
            }
            "level" => {
                p.level = Some(
                    value
                        .parse()
                        .map_err(|_| format!("line {}: `level` must be an integer", idx + 1))?,
                )
            }
            other => return Err(format!("line {}: unknown key `{other}`", idx + 1)),
        }
    }
    if let Some(p) = cur.take() {
        decls.push(finish(p)?);
    }
    for (i, a) in decls.iter().enumerate() {
        for b in &decls[i + 1..] {
            if a.name == b.name {
                return Err(format!("duplicate lock name `{}`", a.name));
            }
            if a.level == b.level {
                return Err(format!(
                    "`{}` and `{}` share level {} — the order must be total",
                    a.name, b.name, a.level
                ));
            }
            if a.file == b.file && a.field == b.field {
                return Err(format!("duplicate entry for {}::{}", a.file, a.field));
            }
        }
    }
    Ok(decls)
}

/// Whether the acquisition at `f.lines[idx]` carries a `LOCKORDER:`
/// justification on the same line or in the comment block above.
fn lock_order_suppressed(f: &SourceFile, idx: usize) -> bool {
    if f.lines[idx].contains(LOCK_ORDER_SUPPRESSION) {
        return true;
    }
    let mut j = idx;
    while j > 0 && is_comment_or_attr(&f.lines[j - 1]) {
        j -= 1;
        if f.lines[j].contains(LOCK_ORDER_SUPPRESSION) {
            return true;
        }
    }
    false
}

/// The lock field declared on `code`, if any: an optionally-`pub` struct
/// field whose type mentions `Mutex<` or `RwLock<` (never `MutexGuard`,
/// never a `Mutex::new` initializer, never a `&Mutex<T>` fn parameter).
fn lock_field_decl(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let (name, ty) = t.split_once(':')?;
    let name = name.trim();
    if name.is_empty() || !name.bytes().all(is_ident_byte) {
        return None;
    }
    let ty = ty.trim_start();
    // References are fn parameters, not owned fields.
    if ty.starts_with('&') {
        return None;
    }
    (ty.contains("Mutex<") || ty.contains("RwLock<")).then(|| name.to_string())
}

/// Lock names acquired on this line: every `recover("<name>"` call. The
/// name is read from the raw line (string contents are blanked in the
/// code portion), but only when the code portion actually calls
/// `recover` — a comment mentioning it does not count.
fn acquired_names(raw: &str, code: &str) -> Vec<String> {
    if !has_word(code, "recover") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("recover(\"") {
        let tail = &rest[pos + "recover(\"".len()..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

/// Enforce the declared total lock order over the resident service:
///
/// - every `Mutex`/`RwLock` field under `crates/serve/src/` has a
///   `[[lock]]` entry (and every entry matches a live field);
/// - every declared lock is actually acquired somewhere via
///   `lock::recover("<name>", ...)`, and never via a bare
///   `.lock()`/`.read()`/`.write()` on the field (those bypass poison
///   recovery and the runtime lock-order graph);
/// - no site acquires a lock whose level is ≤ the level of any guard
///   still live at that point. Guard liveness is tracked syntactically:
///   a `let`-bound guard lives to the end of its block (or an explicit
///   `drop(var)`); a temporary dies within its statement.
///
/// Locks acquired under names not in the order file (test-local
/// mutexes) are deliberately untracked.
pub fn lint_lock_order(files: &[SourceFile], order_src: &str) -> Vec<Finding> {
    let decls = match parse_lock_order(order_src) {
        Ok(d) => d,
        Err(e) => {
            return vec![Finding {
                file: "analyze/locks.toml".to_string(),
                line: 0,
                lint: "lock-order",
                message: format!("lock order parse error: {e}"),
            }]
        }
    };
    let by_name: BTreeMap<&str, &LockDecl> =
        decls.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut out = Vec::new();

    // Field coverage: serve-layer lock fields ↔ [[lock]] entries.
    let mut seen_fields: Vec<(&str, String)> = Vec::new();
    for f in files {
        if !f.rel.starts_with("crates/serve/src/") {
            continue;
        }
        for (idx, raw) in f.lines.iter().enumerate() {
            let code = code_portion(raw);
            let Some(field) = lock_field_decl(&code) else { continue };
            seen_fields.push((&f.rel, field.clone()));
            if !decls.iter().any(|d| d.file == f.rel && d.field == field) {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: idx + 1,
                    lint: "lock-order",
                    message: format!(
                        "lock field `{field}` has no [[lock]] entry in analyze/locks.toml — \
                         assign it a hierarchy level"
                    ),
                });
            }
        }
    }
    for d in &decls {
        if !seen_fields.iter().any(|(rel, field)| *rel == d.file && *field == d.field) {
            out.push(Finding {
                file: "analyze/locks.toml".to_string(),
                line: d.line,
                lint: "lock-order",
                message: format!(
                    "stale [[lock]] entry `{}`: no `{}: Mutex<...>` field in {}",
                    d.name, d.field, d.file
                ),
            });
        }
    }

    // Acquisition scan: order violations, recover() bypasses, and
    // never-acquired names.
    let mut names_acquired: Vec<&str> = Vec::new();
    for f in files {
        struct Held<'a> {
            depth: usize,
            decl: &'a LockDecl,
            var: Option<String>,
            line: usize,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        for (idx, raw) in f.lines.iter().enumerate() {
            let code = code_portion(raw);
            for name in acquired_names(raw, &code) {
                let Some(decl) = by_name.get(name.as_str()).copied() else {
                    continue; // test-local mutex; untracked by design
                };
                if !names_acquired.contains(&decl.name.as_str()) {
                    names_acquired.push(&decl.name);
                }
                if !lock_order_suppressed(f, idx) {
                    for h in &held {
                        if decl.level <= h.decl.level {
                            out.push(Finding {
                                file: f.rel.clone(),
                                line: idx + 1,
                                lint: "lock-order",
                                message: format!(
                                    "acquires `{}` (level {}) while holding `{}` (level {}, \
                                     taken line {}) — the order file requires strictly \
                                     increasing levels; reorder, or justify with `{}`",
                                    decl.name,
                                    decl.level,
                                    h.decl.name,
                                    h.decl.level,
                                    h.line,
                                    LOCK_ORDER_SUPPRESSION
                                ),
                            });
                        }
                    }
                }
                // A `let`-bound guard outlives the statement; anything
                // else — including `let Some(x) = recover(..).get(..)`
                // destructurings, whose guard is a temporary — dies with
                // it. Uppercase-initial "bindings" are enum patterns.
                let t = code.trim_start();
                if let Some(rest) = t.strip_prefix("let ") {
                    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                    let var: String = rest
                        .bytes()
                        .take_while(|b| is_ident_byte(*b))
                        .map(char::from)
                        .collect();
                    if var != "_"
                        && !var.is_empty()
                        && !var.as_bytes()[0].is_ascii_uppercase()
                    {
                        held.push(Held {
                            depth,
                            decl,
                            var: Some(var),
                            line: idx + 1,
                        });
                    }
                }
            }
            // Direct acquisition on a declared field bypasses recover().
            for d in &decls {
                if d.file != f.rel {
                    continue;
                }
                for method in ["lock", "read", "write"] {
                    if code.contains(&format!(".{}.{method}()", d.field))
                        && !lock_order_suppressed(f, idx)
                    {
                        out.push(Finding {
                            file: f.rel.clone(),
                            line: idx + 1,
                            lint: "lock-order",
                            message: format!(
                                "acquires `{}` via bare `.{method}()` — route it through \
                                 `lock::recover(\"{}\", ...)` so poison recovery and the \
                                 lock-order graph see it",
                                d.name, d.name
                            ),
                        });
                    }
                }
            }
            // Explicit drops release their guard mid-block.
            if has_word(&code, "drop") {
                held.retain(|h| match &h.var {
                    Some(v) => !code.contains(&format!("drop({v})")),
                    None => true,
                });
            }
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            // A guard bound at depth d dies when its block closes.
            held.retain(|h| h.depth <= depth);
        }
    }
    for d in &decls {
        if !names_acquired.contains(&d.name.as_str()) {
            out.push(Finding {
                file: "analyze/locks.toml".to_string(),
                line: d.line,
                lint: "lock-order",
                message: format!(
                    "`{}` is declared but never acquired via `lock::recover(\"{}\", ...)`",
                    d.name, d.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Scanner + driver
// ---------------------------------------------------------------------------

fn excluded(rel: &str) -> bool {
    rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.contains("/target/")
        || rel.starts_with("crates/analyze")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out);
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Load every scanned `.rs` file under the repo root, sorted by path.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut paths);
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::from_str(&rel, &src));
    }
    Ok(files)
}

/// Run every lint against the repo at `root`.
pub fn run_all(root: &Path) -> Result<Vec<Finding>, String> {
    let files = load_sources(root)?;
    let allowlist = fs::read_to_string(root.join("analyze/atomics.toml"))
        .map_err(|e| format!("analyze/atomics.toml: {e}"))?;
    let lock_order = fs::read_to_string(root.join("analyze/locks.toml"))
        .map_err(|e| format!("analyze/locks.toml: {e}"))?;

    let mut findings = Vec::new();
    for f in &files {
        findings.extend(lint_safety(f));
        findings.extend(lint_hot_path_locks(f));
    }
    findings.extend(lint_atomics(&files, &allowlist));
    findings.extend(lint_lock_order(&files, &lock_order));

    let run_rs = files
        .iter()
        .find(|f| f.rel == "crates/core/src/run.rs")
        .ok_or("crates/core/src/run.rs not found")?;
    let determinism = fs::read_to_string(root.join("tests/determinism.rs"))
        .map_err(|e| format!("tests/determinism.rs: {e}"))?;
    findings.extend(lint_impl_coverage(run_rs, &determinism));

    let guard_rs = files
        .iter()
        .find(|f| f.rel == "crates/core/src/guard.rs")
        .ok_or("crates/core/src/guard.rs not found")?;
    let protocol_rs = files
        .iter()
        .find(|f| f.rel == "crates/serve/src/protocol.rs")
        .ok_or("crates/serve/src/protocol.rs not found")?;
    findings.extend(lint_wire_codes(guard_rs, protocol_rs));
    findings.extend(lint_opcode_coverage(protocol_rs, &files));

    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

/// Observed `Ordering::` sites across the repo, in `atomics.toml` entry
/// order — the `--list-atomics` dump used to (re)populate the allowlist.
///
/// The `reason` line is emitted commented out: an entry pasted verbatim
/// fails [`parse_allowlist`] with a missing-`reason` error instead of
/// slipping a placeholder justification past the lint (and
/// [`parse_allowlist`] rejects literal `TODO` reasons besides).
pub fn list_atomics(root: &Path) -> Result<String, String> {
    let files = load_sources(root)?;
    let mut out = String::new();
    for f in &files {
        for (ord, n) in count_atomics(f) {
            out.push_str(&format!(
                "[[site]]\nfile = \"{}\"\nordering = \"{ord}\"\ncount = {n}\n\
                 # reason = \"REQUIRED: why {ord} is sufficient at these sites\"\n\n",
                f.rel
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_str(rel, src)
    }

    // -- lint 1 ----------------------------------------------------------

    #[test]
    fn flags_unsafe_without_safety_comment() {
        let f = sf(
            "crates/x/src/lib.rs",
            "fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n",
        );
        let fs = lint_safety(&f);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[0].lint, "safety-comment");
    }

    #[test]
    fn safety_comment_above_or_inline_is_accepted() {
        let above = sf(
            "a.rs",
            "// SAFETY: p is valid for writes by contract.\nunsafe { *p = 0 };\n",
        );
        assert!(lint_safety(&above).is_empty());
        let inline = sf("b.rs", "let v = unsafe { x.get() }; // SAFETY: unique owner\n");
        assert!(lint_safety(&inline).is_empty());
        let doc_section = sf(
            "c.rs",
            "/// # Safety\n/// Caller must outlive the scope.\n#[inline]\nunsafe fn g() {}\n",
        );
        assert!(lint_safety(&doc_section).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let f = sf(
            "a.rs",
            "// this mentions unsafe casually\nlet s = \"unsafe\";\n",
        );
        assert!(lint_safety(&f).is_empty());
    }

    #[test]
    fn non_adjacent_safety_comment_does_not_count() {
        let f = sf(
            "a.rs",
            "// SAFETY: stale note\nlet x = 1;\nunsafe { drop_raw(x) };\n",
        );
        assert_eq!(lint_safety(&f).len(), 1);
    }

    // -- lint 2 ----------------------------------------------------------

    const GOOD_LIST: &str = r#"
# header
[[site]]
file = "crates/x/src/a.rs"
ordering = "Relaxed"
count = 2
reason = "heuristic counter, never load-acquired"
"#;

    #[test]
    fn atomics_clean_when_counts_match() {
        let f = sf(
            "crates/x/src/a.rs",
            "a.fetch_add(1, Ordering::Relaxed);\nb.store(0, Ordering::Relaxed);\n",
        );
        assert!(lint_atomics(&[f], GOOD_LIST).is_empty());
    }

    #[test]
    fn flags_unlisted_and_drifted_orderings() {
        let unlisted = sf("crates/x/src/b.rs", "a.load(Ordering::SeqCst);\n");
        let fs = lint_atomics(&[unlisted], GOOD_LIST);
        // one unlisted site + one stale entry (a.rs has no sites at all)
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().any(|f| f.message.contains("not justified")));
        assert!(fs.iter().any(|f| f.message.contains("stale entry")));

        let drifted = sf(
            "crates/x/src/a.rs",
            "a.fetch_add(1, Ordering::Relaxed);\n",
        );
        let fs = lint_atomics(&[drifted], GOOD_LIST);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("count drifted"));
    }

    #[test]
    fn cmp_ordering_is_out_of_scope() {
        let f = sf(
            "crates/x/src/c.rs",
            "match a.cmp(&b) { Ordering::Less => {} _ => {} }\n",
        );
        assert!(count_atomics(&f).is_empty());
    }

    #[test]
    fn allowlist_rejects_empty_reason_and_bad_ordering() {
        let empty = "[[site]]\nfile = \"a.rs\"\nordering = \"Relaxed\"\ncount = 1\nreason = \"\"\n";
        assert!(parse_allowlist(empty).is_err());
        let bad = "[[site]]\nfile = \"a.rs\"\nordering = \"Sequential\"\ncount = 1\nreason = \"x\"\n";
        assert!(parse_allowlist(bad).is_err());
    }

    #[test]
    fn allowlist_rejects_todo_placeholder_reasons() {
        let todo =
            "[[site]]\nfile = \"a.rs\"\nordering = \"Relaxed\"\ncount = 1\nreason = \"TODO\"\n";
        let err = parse_allowlist(todo).unwrap_err();
        assert!(err.contains("TODO placeholder"), "{err}");
        let todo_ish = "[[site]]\nfile = \"a.rs\"\nordering = \"Relaxed\"\ncount = 1\n\
                        reason = \"TODO: audit this later\"\n";
        assert!(parse_allowlist(todo_ish).is_err());
    }

    #[test]
    fn list_atomics_template_cannot_be_pasted_without_a_reason() {
        // The dump's entry shape, as emitted by list_atomics: the reason
        // line is a comment, so verbatim pasting fails with a
        // missing-required-field error rather than parsing with a
        // placeholder justification.
        let template = "[[site]]\nfile = \"crates/x/src/a.rs\"\nordering = \"Relaxed\"\n\
                        count = 2\n# reason = \"REQUIRED: why Relaxed is sufficient at these sites\"\n";
        let err = parse_allowlist(template).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    // -- lint 3 ----------------------------------------------------------

    #[test]
    fn flags_mutex_in_hot_path_and_honors_suppression() {
        let bad = sf(
            "crates/core/src/reqbuf.rs",
            "use parking_lot::Mutex;\nstatic L: Mutex<()> = Mutex::new(());\n",
        );
        let fs = lint_hot_path_locks(&bad);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.lint == "hot-path-lock"));

        let ok = sf(
            "crates/core/src/parallel_atomic.rs",
            "// lint:allow(hot-path-lock): cold merge path only\nuse parking_lot::Mutex;\n",
        );
        assert!(lint_hot_path_locks(&ok).is_empty());

        let elsewhere = sf("crates/core/src/buckets.rs", "use std::sync::Mutex;\n");
        assert!(lint_hot_path_locks(&elsewhere).is_empty());

        // The dense-pull kernel and the density oracle are hot paths too.
        let pull = sf("crates/core/src/pull.rs", "use std::sync::Mutex;\n");
        assert_eq!(lint_hot_path_locks(&pull).len(), 1);
        let oracle = sf("crates/gblas/src/direction.rs", "use std::sync::RwLock;\n");
        assert_eq!(lint_hot_path_locks(&oracle).len(), 1);

        // The generalized stepping loop joined the ban with the
        // strategy framework: its extraction scan is per-vertex work.
        let stepping = sf("crates/core/src/stepping.rs", "use std::sync::Mutex;\n");
        assert_eq!(lint_hot_path_locks(&stepping).len(), 1);
    }

    // -- lint 4 ----------------------------------------------------------

    const MINI_RUN_RS: &str = r#"
pub enum Implementation {
    Canonical,
    Fused,
}
impl Implementation {
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "delta" | "canonical" => Some(Implementation::Canonical),
            "fused" => Some(Implementation::Fused),
            _ => None,
        }
    }
    pub fn name(self) -> &'static str {
        match self {
            Implementation::Canonical => "canonical",
            Implementation::Fused => "fused",
        }
    }
}
pub fn run_with_budget(imp: Implementation) {
    match imp {
        Implementation::Canonical => {}
        Implementation::Fused => {}
    }
}
"#;

    #[test]
    fn impl_coverage_clean_on_complete_front_door() {
        let run = sf("crates/core/src/run.rs", MINI_RUN_RS);
        let det = "let names = [\"canonical\", \"fused\"];";
        assert!(lint_impl_coverage(&run, det).is_empty());
    }

    #[test]
    fn impl_coverage_flags_missing_dispatch_and_missing_test_literal() {
        let broken = MINI_RUN_RS.replace(
            "        Implementation::Fused => {}\n    }\n}",
            "        _ => {}\n    }\n}",
        );
        let run = sf("crates/core/src/run.rs", &broken);
        let det = "let names = [\"canonical\"];";
        let fs = lint_impl_coverage(&run, det);
        assert!(
            fs.iter()
                .any(|f| f.message.contains("`Fused` is not dispatched")),
            "{fs:?}"
        );
        assert!(
            fs.iter()
                .any(|f| f.message.contains("\"fused\" is not covered")),
            "{fs:?}"
        );
    }

    // -- lint 5 ----------------------------------------------------------

    const MINI_GUARD_RS: &str = r#"
pub enum SsspError {
    InvalidDelta {
        delta: f64,
    },
    Cancelled {
        checkpoint: Box<Checkpoint>,
    },
    WorkerPanicked {
        message: String,
    },
}
"#;

    const MINI_WIRE_RS: &str = r#"
pub fn wire_code(err: &SsspError) -> u8 {
    match err {
        SsspError::InvalidDelta { .. } => 14,
        SsspError::Cancelled { .. } => 16,
        SsspError::WorkerPanicked { .. } => 20,
    }
}
"#;

    #[test]
    fn wire_codes_clean_on_exhaustive_mapping() {
        let guard = sf("crates/core/src/guard.rs", MINI_GUARD_RS);
        let wire = sf("crates/serve/src/protocol.rs", MINI_WIRE_RS);
        assert!(lint_wire_codes(&guard, &wire).is_empty());
    }

    #[test]
    fn wire_codes_flag_missing_variant_and_wildcard_arm() {
        let guard = sf("crates/core/src/guard.rs", MINI_GUARD_RS);
        let lossy = MINI_WIRE_RS.replace(
            "        SsspError::WorkerPanicked { .. } => 20,",
            "        _ => 0,",
        );
        let wire = sf("crates/serve/src/protocol.rs", &lossy);
        let fs = lint_wire_codes(&guard, &wire);
        assert!(
            fs.iter().any(|f| f.message.contains("`SsspError::WorkerPanicked` has no arm")),
            "{fs:?}"
        );
        assert!(
            fs.iter().any(|f| f.message.contains("wildcard `_ =>` arm")),
            "{fs:?}"
        );
        assert!(fs.iter().all(|f| f.lint == "wire-code-coverage"));
    }

    #[test]
    fn wire_codes_flag_a_missing_mapping_function_entirely() {
        let guard = sf("crates/core/src/guard.rs", MINI_GUARD_RS);
        let wire = sf("crates/serve/src/protocol.rs", "pub fn other() {}\n");
        let fs = lint_wire_codes(&guard, &wire);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("could not locate `pub fn wire_code`"), "{fs:?}");
    }

    // -- lint 6 ----------------------------------------------------------

    const MINI_PROTOCOL_RS: &str = r#"
pub mod opcode {
    /// Liveness probe.
    pub const PING: u8 = 0x02;
    /// Readiness/health probe.
    pub const HEALTH: u8 = 0x09;
}
pub fn encode(op: u8) -> u8 {
    match op {
        0 => opcode::PING,
        _ => opcode::HEALTH,
    }
}
pub fn decode(op: u8) -> bool {
    op == opcode::PING || op == opcode::HEALTH
}
"#;

    #[test]
    fn opcode_coverage_clean_when_every_opcode_is_encoded_and_decoded() {
        let proto = sf("crates/serve/src/protocol.rs", MINI_PROTOCOL_RS);
        let files = [sf("crates/serve/src/protocol.rs", MINI_PROTOCOL_RS)];
        assert!(lint_opcode_coverage(&proto, &files).is_empty());
    }

    #[test]
    fn opcode_coverage_flags_a_declared_but_half_wired_opcode() {
        // HEALTH loses its decode arm: one reference left, below the
        // two-sided (encode + decode) floor.
        let half = MINI_PROTOCOL_RS.replace("op == opcode::PING || op == opcode::HEALTH", "op == opcode::PING && op == opcode::PING");
        let proto = sf("crates/serve/src/protocol.rs", &half);
        let files = [sf("crates/serve/src/protocol.rs", &half)];
        let fs = lint_opcode_coverage(&proto, &files);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].lint, "opcode-coverage");
        assert!(fs[0].message.contains("`HEALTH` has 1"), "{fs:?}");
        // The finding points at the declaration line inside the mod.
        assert!(fs[0].line > 0);
    }

    #[test]
    fn opcode_coverage_counts_references_from_other_files_but_not_the_mod() {
        // Strip decode entirely: PING and HEALTH keep one in-file
        // reference each; a second file supplies HEALTH's other use, so
        // only PING is flagged. Mentions inside the mod (the consts
        // themselves) and in comments never count.
        let enc_only = MINI_PROTOCOL_RS.replace(
            "pub fn decode(op: u8) -> bool {\n    op == opcode::PING || op == opcode::HEALTH\n}",
            "// decode gone; opcode::PING in a comment stays invisible\n",
        );
        let proto = sf("crates/serve/src/protocol.rs", &enc_only);
        let files = [
            sf("crates/serve/src/protocol.rs", &enc_only),
            sf(
                "crates/serve/src/server.rs",
                "fn probe() -> u8 { crate::protocol::opcode::HEALTH }\n",
            ),
        ];
        let fs = lint_opcode_coverage(&proto, &files);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`PING` has 1"), "{fs:?}");
    }

    #[test]
    fn opcode_coverage_flags_a_missing_opcode_mod() {
        let proto = sf("crates/serve/src/protocol.rs", "pub fn other() {}\n");
        let fs = lint_opcode_coverage(&proto, &[]);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("could not locate `pub mod opcode`"), "{fs:?}");
    }

    // -- lint 7 ----------------------------------------------------------

    const MINI_LOCKS_TOML: &str = r#"
[[lock]]
name = "queue.state"
file = "crates/serve/src/queue.rs"
field = "state"
level = 10
reason = "innermost"

[[lock]]
name = "gauges"
file = "crates/serve/src/server.rs"
field = "gauges"
level = 40
reason = "terminal"
"#;

    const MINI_QUEUE_RS: &str = "\
pub struct Q {\n    state: Mutex<u32>,\n}\n\
impl Q {\n    fn touch(&self) {\n        let s = lock::recover(\"queue.state\", &self.state);\n    }\n}\n";

    const MINI_SERVER_RS: &str = "\
pub struct S {\n    gauges: Mutex<u32>,\n}\n\
impl S {\n    fn ordered(&self, q: &Q) {\n        let s = lock::recover(\"queue.state\", &q.state);\n        let g = lock::recover(\"gauges\", &self.gauges);\n    }\n}\n";

    #[test]
    fn lock_order_clean_on_an_ordered_repo() {
        let files = [
            sf("crates/serve/src/queue.rs", MINI_QUEUE_RS),
            sf("crates/serve/src/server.rs", MINI_SERVER_RS),
        ];
        let fs = lint_lock_order(&files, MINI_LOCKS_TOML);
        assert!(fs.is_empty(), "{fs:?}");
    }

    /// The negative fixture: a snippet that takes the locks in inverted
    /// order must be flagged, with both levels and the holding site in
    /// the message.
    #[test]
    fn lock_order_flags_an_inverted_acquisition() {
        let inverted = "\
pub struct S {\n    gauges: Mutex<u32>,\n}\n\
impl S {\n    fn inverted(&self, q: &Q) {\n        let g = lock::recover(\"gauges\", &self.gauges);\n        let s = lock::recover(\"queue.state\", &q.state);\n    }\n}\n";
        let files = [
            sf("crates/serve/src/queue.rs", MINI_QUEUE_RS),
            sf("crates/serve/src/server.rs", inverted),
        ];
        let fs = lint_lock_order(&files, MINI_LOCKS_TOML);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].lint, "lock-order");
        assert_eq!(fs[0].file, "crates/serve/src/server.rs");
        assert_eq!(fs[0].line, 7);
        assert!(
            fs[0].message.contains("`queue.state` (level 10)")
                && fs[0].message.contains("`gauges` (level 40"),
            "{fs:?}"
        );
    }

    #[test]
    fn lock_order_honors_the_lockorder_escape_hatch_and_keeps_tracking() {
        // The justified inversion in f() is accepted; the identical
        // unjustified one in g() is still flagged.
        let locks = concat!(
            "[[lock]]\nname = \"a\"\nfile = \"crates/serve/src/x.rs\"\nfield = \"a_lock\"\n",
            "level = 10\nreason = \"first\"\n",
            "[[lock]]\nname = \"b\"\nfile = \"crates/serve/src/x.rs\"\nfield = \"b_lock\"\n",
            "level = 20\nreason = \"second\"\n",
        );
        let src = "\
pub struct X {\n    a_lock: Mutex<u32>,\n    b_lock: Mutex<u32>,\n}\n\
impl X {\n    fn f(&self) {\n        let b = lock::recover(\"b\", &self.b_lock);\n        // LOCKORDER: drain answers clients before counters update\n        let a = lock::recover(\"a\", &self.a_lock);\n    }\n    fn g(&self) {\n        let b = lock::recover(\"b\", &self.b_lock);\n        let a = lock::recover(\"a\", &self.a_lock);\n    }\n}\n";
        let files = [sf("crates/serve/src/x.rs", src)];
        let fs = lint_lock_order(&files, locks);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 13, "only the unjustified inversion in g() is flagged");
    }

    #[test]
    fn lock_order_releases_on_drop_and_block_close() {
        let locks = concat!(
            "[[lock]]\nname = \"a\"\nfile = \"crates/serve/src/x.rs\"\nfield = \"a_lock\"\n",
            "level = 10\nreason = \"first\"\n",
            "[[lock]]\nname = \"b\"\nfile = \"crates/serve/src/x.rs\"\nfield = \"b_lock\"\n",
            "level = 20\nreason = \"second\"\n",
        );
        // b is taken first both times, but once behind a drop() and once
        // in a closed block — a is acquired with nothing held.
        let src = "\
pub struct X {\n    a_lock: Mutex<u32>,\n    b_lock: Mutex<u32>,\n}\n\
impl X {\n    fn dropped(&self) {\n        let b = lock::recover(\"b\", &self.b_lock);\n        drop(b);\n        let a = lock::recover(\"a\", &self.a_lock);\n    }\n    fn scoped(&self) {\n        {\n            let b = lock::recover(\"b\", &self.b_lock);\n        }\n        let a = lock::recover(\"a\", &self.a_lock);\n    }\n}\n";
        let files = [sf("crates/serve/src/x.rs", src)];
        let fs = lint_lock_order(&files, locks);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn lock_order_flags_unmapped_fields_stale_entries_and_bare_locks() {
        let files = [
            sf(
                "crates/serve/src/queue.rs",
                "pub struct Q {\n    state: Mutex<u32>,\n    extra: RwLock<u32>,\n}\n\
                 impl Q {\n    fn f(&self) {\n        let s = lock::recover(\"queue.state\", &self.state);\n        let x = self.state.lock().unwrap();\n    }\n}\n",
            ),
            // server.rs (and its gauges field) gone entirely.
            sf("crates/serve/src/other.rs", "fn nothing() {}\n"),
        ];
        let fs = lint_lock_order(&files, MINI_LOCKS_TOML);
        assert!(
            fs.iter().any(|f| f.message.contains("`extra` has no [[lock]] entry")),
            "{fs:?}"
        );
        assert!(
            fs.iter().any(|f| f.file == "analyze/locks.toml"
                && f.message.contains("stale [[lock]] entry `gauges`")),
            "{fs:?}"
        );
        assert!(
            fs.iter().any(|f| f.file == "analyze/locks.toml"
                && f.message.contains("`gauges` is declared but never acquired")),
            "{fs:?}"
        );
        assert!(
            fs.iter()
                .any(|f| f.line == 8 && f.message.contains("bare `.lock()`")),
            "{fs:?}"
        );
    }

    #[test]
    fn lock_order_ignores_guards_mutex_new_and_fn_params() {
        // None of these lines declare a lock field: a MutexGuard field,
        // a Mutex::new initializer, a &Mutex parameter, a let binding.
        let src = "\
pub struct G<'a> {\n    inner: Option<MutexGuard<'a, u32>>,\n}\n\
fn build() {\n    let s = Something { state: Mutex::new(0) };\n}\n\
fn takes(m: &Mutex<u32>) {}\n\
fn local() {\n    let state: Mutex<u32> = Mutex::new(0);\n}\n";
        let files = [sf("crates/serve/src/lockish.rs", src)];
        let locks = "";
        let fs = lint_lock_order(&files, locks);
        // `let state: Mutex<u32>` is a local, not a field — but the
        // declframe heuristic sees `state: Mutex<`. The `let ` prefix
        // must exempt it.
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn lock_order_file_rejects_duplicates_and_placeholders() {
        let dup_level = concat!(
            "[[lock]]\nname = \"a\"\nfile = \"f.rs\"\nfield = \"a\"\nlevel = 10\nreason = \"x\"\n",
            "[[lock]]\nname = \"b\"\nfile = \"f.rs\"\nfield = \"b\"\nlevel = 10\nreason = \"y\"\n",
        );
        assert!(parse_lock_order(dup_level).unwrap_err().contains("share level 10"));
        let dup_name = concat!(
            "[[lock]]\nname = \"a\"\nfile = \"f.rs\"\nfield = \"a\"\nlevel = 10\nreason = \"x\"\n",
            "[[lock]]\nname = \"a\"\nfile = \"g.rs\"\nfield = \"b\"\nlevel = 20\nreason = \"y\"\n",
        );
        assert!(parse_lock_order(dup_name).unwrap_err().contains("duplicate lock name"));
        let todo = "[[lock]]\nname = \"a\"\nfile = \"f.rs\"\nfield = \"a\"\nlevel = 10\nreason = \"TODO\"\n";
        assert!(parse_lock_order(todo).unwrap_err().contains("TODO placeholder"));
        let unparsed = lint_lock_order(&[], "level = 1\n");
        assert_eq!(unparsed.len(), 1);
        assert!(unparsed[0].message.contains("parse error"), "{unparsed:?}");
    }

    // -- findings carry real lines (satellite) ----------------------------

    #[test]
    fn atomics_findings_point_at_a_source_line_and_the_toml_entry() {
        let unlisted = sf(
            "crates/x/src/b.rs",
            "// comment\nfn f(a: &AtomicU64) {\n    a.load(Ordering::SeqCst);\n}\n",
        );
        let fs = lint_atomics(&[unlisted], GOOD_LIST);
        let site = fs.iter().find(|f| f.message.contains("not justified")).unwrap();
        assert_eq!((site.file.as_str(), site.line), ("crates/x/src/b.rs", 3));
        // GOOD_LIST's [[site]] header sits on line 3 of the literal.
        let stale = fs.iter().find(|f| f.message.contains("stale entry")).unwrap();
        assert_eq!((stale.file.as_str(), stale.line), ("analyze/atomics.toml", 3));
    }

    #[test]
    fn wire_code_findings_point_at_the_mapping() {
        let guard = sf("crates/core/src/guard.rs", MINI_GUARD_RS);
        let lossy = MINI_WIRE_RS.replace(
            "        SsspError::WorkerPanicked { .. } => 20,",
            "        _ => 0,",
        );
        let wire = sf("crates/serve/src/protocol.rs", &lossy);
        let fs = lint_wire_codes(&guard, &wire);
        let missing = fs.iter().find(|f| f.message.contains("has no arm")).unwrap();
        assert_eq!(missing.line, 2, "points at `pub fn wire_code`");
        let wildcard = fs.iter().find(|f| f.message.contains("wildcard")).unwrap();
        assert_eq!(wildcard.line, 6, "points at the `_ =>` arm itself");
    }

    // -- self-test: the repo itself is clean ------------------------------

    #[test]
    fn repo_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let findings = run_all(&root).expect("lint run");
        assert!(
            findings.is_empty(),
            "repo has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
