//! `sssp-analyze` — the workspace's repo-invariant lint, run in CI.
//!
//! ```text
//! cargo run -p sssp-analyze                 # all lints; exit 1 on findings
//! cargo run -p sssp-analyze -- --list-atomics  # dump observed Ordering:: sites
//! cargo run -p sssp-analyze -- --root <dir>    # lint a different checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-atomics" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (use --list-atomics, --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot resolve repo root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list {
        return match sssp_analyze::list_atomics(&root) {
            Ok(dump) => {
                print!("{dump}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sssp-analyze: {e}");
                ExitCode::from(2)
            }
        };
    }

    match sssp_analyze::run_all(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("sssp-analyze: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("sssp-analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sssp-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
