//! `sssp-analyze` — the workspace's repo-invariant lint, run in CI.
//!
//! ```text
//! cargo run -p sssp-analyze                 # all lints; exit 1 on findings
//! cargo run -p sssp-analyze -- --json          # findings as a JSON array
//! cargo run -p sssp-analyze -- --list-atomics  # dump observed Ordering:: sites
//! cargo run -p sssp-analyze -- --root <dir>    # lint a different checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use sssp_analyze::Finding;

/// Minimal JSON string escaping — the four characters that can occur in
/// file paths and lint messages (`"`, `\`, newline, tab) plus the rest
/// of the control range. No dependency needed for output this shape.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(findings: &[Finding]) {
    println!("[");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        println!(
            "  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{comma}",
            json_escape(&f.file),
            f.line,
            json_escape(f.lint),
            json_escape(&f.message)
        );
    }
    println!("]");
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut list = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-atomics" => list = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (use --json, --list-atomics, --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot resolve repo root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list {
        return match sssp_analyze::list_atomics(&root) {
            Ok(dump) => {
                print!("{dump}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sssp-analyze: {e}");
                ExitCode::from(2)
            }
        };
    }

    // Exit code is nonzero iff findings are non-empty (2 on harness
    // errors), in both output modes — CI keys off the code, not the text.
    match sssp_analyze::run_all(&root) {
        Ok(findings) if findings.is_empty() => {
            if json {
                print_json(&findings);
            } else {
                println!("sssp-analyze: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                print_json(&findings);
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("sssp-analyze: {} finding(s)", findings.len());
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sssp-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
