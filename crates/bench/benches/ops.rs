//! GraphBLAS operation micro-benchmarks (ABL-OPS): the cost of the
//! building blocks the unfused implementation strings together — `vxm`
//! over `(min,+)`, the two-apply filter idiom vs single-pass `select`,
//! `eWiseAdd`, and the parallel kernels.

use criterion::{criterion_group, criterion_main, Criterion};

use gblas::ops::{self, semiring, FnUnary, Identity};
use gblas::{Descriptor, Matrix, Vector};
use graphdata::gen;
use taskpool::ThreadPool;

fn setup_graph() -> Matrix<f64> {
    let mut el = gen::rmat(gen::RmatParams::graph500(11, 8), 42);
    el.symmetrize();
    el.remove_self_loops();
    el.dedup_min();
    graphdata::weights::assign_symmetric(
        &mut el,
        graphdata::WeightModel::UniformFloat { lo: 0.1, hi: 2.0 },
        7,
    );
    el.to_adjacency()
}

fn dense_frontier(n: usize) -> Vector<f64> {
    Vector::from_entries(n, (0..n).step_by(2).map(|i| (i, i as f64 * 0.5)).collect()).unwrap()
}

fn ops_bench(c: &mut Criterion) {
    let a = setup_graph();
    let n = a.nrows();
    let u = dense_frontier(n);
    let pool = ThreadPool::with_threads(4).expect("pool");

    let mut group = c.benchmark_group("gblas_ops");
    group.sample_size(20);

    group.bench_function("vxm_min_plus", |b| {
        let mut out = Vector::new(n);
        b.iter(|| {
            ops::vxm(
                &mut out,
                None,
                None,
                &semiring::min_plus_f64(),
                &u,
                &a,
                Descriptor::replace(),
            )
            .unwrap();
        });
    });

    group.bench_function("par_vxm_min_plus_4t", |b| {
        let mut out = Vector::new(n);
        b.iter(|| {
            gblas::parallel::par_vxm(
                &pool,
                &mut out,
                None,
                None,
                &semiring::min_plus_f64(),
                &u,
                &a,
                Descriptor::replace(),
            )
            .unwrap();
        });
    });

    // The Fig. 2 two-apply filter idiom (predicate + masked identity)...
    group.bench_function("filter_two_apply", |b| {
        let mut ab: Matrix<bool> = Matrix::new(n, n);
        let mut al: Matrix<f64> = Matrix::new(n, n);
        let pred = FnUnary::new(|w: f64| w <= 1.0);
        b.iter(|| {
            ops::matrix_apply(&mut ab, None, None, &pred, &a, Descriptor::new()).unwrap();
            ops::matrix_apply(
                &mut al,
                Some(&ab.mask()),
                None,
                &Identity::<f64>::new(),
                &a,
                Descriptor::replace(),
            )
            .unwrap();
        });
    });

    // ...vs the fused single-pass select.
    group.bench_function("filter_select_fused", |b| {
        let mut al: Matrix<f64> = Matrix::new(n, n);
        b.iter(|| {
            ops::select_matrix(&mut al, None, None, |_, _, w| w <= 1.0, &a, Descriptor::new())
                .unwrap();
        });
    });

    // ...vs the chunked parallel select (the paper's proposed improvement).
    group.bench_function("filter_par_select_4t", |b| {
        b.iter(|| {
            std::hint::black_box(gblas::parallel::par_select_matrix(
                &pool,
                &a,
                0,
                |_, _, w| w <= 1.0,
            ));
        });
    });

    group.bench_function("ewise_add_min", |b| {
        let v = dense_frontier(n);
        let mut out = Vector::new(n);
        b.iter(|| {
            ops::ewise_add_vector(
                &mut out,
                None,
                None,
                &ops::Min::<f64>::new(),
                &u,
                &v,
                Descriptor::new(),
            )
            .unwrap();
        });
    });

    group.bench_function("vector_apply_range_filter", |b| {
        let mut out: Vector<bool> = Vector::new(n);
        let pred = FnUnary::new(|x: f64| (10.0..20.0).contains(&x));
        b.iter(|| {
            ops::vector_apply(&mut out, None, None, &pred, &u, Descriptor::replace()).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, ops_bench);
criterion_main!(benches);
