//! Criterion version of FIG4: thread scaling of the paper's task scheme
//! and the improved scheme, against the fused sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphdata::{paper_suite, SuiteScale};
use sssp_bench::bench_source;
use sssp_core::{fused, parallel, parallel_improved};
use taskpool::ThreadPool;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scaling");
    group.sample_size(10);
    // One representative graph keeps bench time bounded; the fig4 binary
    // sweeps the whole suite.
    let suite = paper_suite(SuiteScale::Smoke);
    let d = suite.last().expect("suite non-empty");
    let g = &d.graph;
    let src = bench_source(g);

    group.bench_function(BenchmarkId::new("sequential_fused", &d.name), |b| {
        b.iter(|| std::hint::black_box(fused::delta_stepping_fused(g, src, 1.0)));
    });
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_threads(threads).expect("pool");
        group.bench_function(
            BenchmarkId::new(format!("paper_scheme_{threads}t"), &d.name),
            |b| {
                b.iter(|| {
                    std::hint::black_box(parallel::delta_stepping_parallel(&pool, g, src, 1.0))
                });
            },
        );
        group.bench_function(
            BenchmarkId::new(format!("improved_{threads}t"), &d.name),
            |b| {
                b.iter(|| {
                    std::hint::black_box(parallel_improved::delta_stepping_parallel_improved(
                        &pool, g, src, 1.0,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
