//! Criterion version of FIG3: unfused GraphBLAS vs fused direct
//! delta-stepping, per suite graph (smoke scale so `cargo bench` stays
//! tractable; the `fig3` binary covers the full suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphdata::{paper_suite, SuiteScale};
use sssp_bench::bench_source;
use sssp_core::{fused, gblas_impl, gblas_select};

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fusion");
    group.sample_size(10);
    for d in paper_suite(SuiteScale::Smoke) {
        let g = &d.graph;
        let src = bench_source(g);
        let a = g.to_adjacency();
        group.bench_with_input(BenchmarkId::new("unfused_gblas", &d.name), &d.name, |b, _| {
            b.iter(|| std::hint::black_box(gblas_impl::sssp_delta_step(&a, 1.0, src)));
        });
        group.bench_with_input(BenchmarkId::new("select_gblas", &d.name), &d.name, |b, _| {
            b.iter(|| std::hint::black_box(gblas_select::sssp_delta_step_select(&a, 1.0, src)));
        });
        group.bench_with_input(BenchmarkId::new("fused_direct", &d.name), &d.name, |b, _| {
            b.iter(|| std::hint::black_box(fused::delta_stepping_fused(g, src, 1.0)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
