//! Criterion version of ABL-DELTA: fused delta-stepping across Δ on one
//! weighted graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphdata::suite::weighted_suite;
use graphdata::SuiteScale;
use sssp_bench::bench_source;
use sssp_core::fused;

fn delta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_sweep");
    group.sample_size(10);
    let suite = weighted_suite(SuiteScale::Smoke);
    let d = suite.last().expect("suite non-empty");
    let g = &d.graph;
    let src = bench_source(g);
    for delta in [0.125f64, 0.5, 1.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new(&d.name, format!("delta_{delta}")),
            &delta,
            |b, &delta| {
                b.iter(|| std::hint::black_box(fused::delta_stepping_fused(g, src, delta)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, delta_sweep);
criterion_main!(benches);
