//! Gallery bench: canonical vertex/edge-centric implementations vs their
//! linear-algebraic twins (BFS, components, triangles) — the same
//! overhead question Fig. 3 asks, on other algorithms.

use criterion::{criterion_group, criterion_main, Criterion};

use graph_algos::{bfs, components, triangles};
use graphdata::{gen, CsrGraph};

fn setup() -> CsrGraph {
    let mut el = gen::rmat(gen::RmatParams::graph500(11, 8), 77);
    el.symmetrize();
    el.make_unit_weight();
    CsrGraph::from_edge_list(&el).unwrap()
}

fn algos(c: &mut Criterion) {
    let g = setup();
    let a = bfs::bool_adjacency(&g);
    let src = (0..g.num_vertices())
        .max_by_key(|&v| g.out_degree(v))
        .unwrap();

    let mut group = c.benchmark_group("gallery");
    group.sample_size(10);

    group.bench_function("bfs_canonical", |b| {
        b.iter(|| std::hint::black_box(bfs::bfs_levels_canonical(&g, src)));
    });
    group.bench_function("bfs_gblas", |b| {
        b.iter(|| std::hint::black_box(bfs::bfs_levels_gblas(&a, src)));
    });
    group.bench_function("components_canonical", |b| {
        b.iter(|| std::hint::black_box(components::components_canonical(&g)));
    });
    group.bench_function("components_gblas", |b| {
        b.iter(|| std::hint::black_box(components::components_gblas(&a)));
    });
    group.bench_function("triangles_canonical", |b| {
        b.iter(|| std::hint::black_box(triangles::triangles_canonical(&g)));
    });
    group.bench_function("triangles_gblas", |b| {
        b.iter(|| std::hint::black_box(triangles::triangles_gblas(&a)));
    });
    group.finish();
}

criterion_group!(benches, algos);
criterion_main!(benches);
