//! BASE — every SSSP implementation head-to-head on one suite graph:
//! Dijkstra, Bellman–Ford, canonical Meyer–Sanders, unfused GraphBLAS,
//! and fused direct.

use criterion::{criterion_group, criterion_main, Criterion};

use graphdata::{paper_suite, SuiteScale};
use sssp_bench::bench_source;
use sssp_core::{bellman_ford, canonical, dijkstra, fused, gblas_impl};

fn baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let suite = paper_suite(SuiteScale::Smoke);
    let d = suite.last().expect("suite non-empty");
    let g = &d.graph;
    let src = bench_source(g);
    let a = g.to_adjacency();

    group.bench_function("dijkstra", |b| {
        b.iter(|| std::hint::black_box(dijkstra::dijkstra(g, src)));
    });
    group.bench_function("bellman_ford", |b| {
        b.iter(|| std::hint::black_box(bellman_ford::bellman_ford(g, src)));
    });
    group.bench_function("canonical_delta_stepping", |b| {
        b.iter(|| std::hint::black_box(canonical::delta_stepping_canonical(g, src, 1.0)));
    });
    group.bench_function("gblas_unfused", |b| {
        b.iter(|| std::hint::black_box(gblas_impl::sssp_delta_step(&a, 1.0, src)));
    });
    group.bench_function("fused_direct", |b| {
        b.iter(|| std::hint::black_box(fused::delta_stepping_fused(g, src, 1.0)));
    });
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
