//! Lightweight timing helpers for the table-emitting binaries (Criterion
//! handles the statistically careful runs; these give quick, stable medians
//! for the printed tables).

use std::time::{Duration, Instant};

/// Repetition policy: `warmup` unmeasured runs, then `samples` measured.
#[derive(Debug, Clone, Copy)]
pub struct Reps {
    /// Unmeasured warm-up iterations.
    pub warmup: usize,
    /// Measured iterations.
    pub samples: usize,
}

impl Default for Reps {
    fn default() -> Self {
        Reps {
            warmup: 1,
            samples: 5,
        }
    }
}

fn collect<F: FnMut()>(mut f: F, reps: Reps) -> Vec<Duration> {
    for _ in 0..reps.warmup {
        f();
    }
    (0..reps.samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect()
}

/// Median wall time of `f` under the policy.
pub fn measure_median<F: FnMut()>(f: F, reps: Reps) -> Duration {
    let mut times = collect(f, reps);
    times.sort_unstable();
    times[times.len() / 2]
}

/// Minimum wall time of `f` under the policy (least-noise estimator).
pub fn measure_min<F: FnMut()>(f: F, reps: Reps) -> Duration {
    collect(f, reps).into_iter().min().expect("samples >= 1")
}

/// Median and minimum wall time of `f` from a single set of samples.
pub fn measure_median_min<F: FnMut()>(f: F, reps: Reps) -> (Duration, Duration) {
    let mut times = collect(f, reps);
    times.sort_unstable();
    (times[times.len() / 2], times[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let d = measure_median(
            || {
                let v: Vec<u64> = (0..10_000).collect();
                std::hint::black_box(v.iter().sum::<u64>());
            },
            Reps { warmup: 1, samples: 3 },
        );
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn min_leq_median() {
        let mut i = 0u64;
        let f = || {
            i = i.wrapping_add(1);
            std::hint::black_box((0..(5_000 + (i % 3) * 1_000)).sum::<u64>());
        };
        let times = collect(f, Reps { warmup: 0, samples: 5 });
        let min = *times.iter().min().unwrap();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert!(min <= sorted[sorted.len() / 2]);
    }
}
