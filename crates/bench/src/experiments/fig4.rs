//! FIG4 — "Performance of the Δ-stepping C implementation on 2 and 4
//! threads, normalized to sequential performance" (paper averages: 1.44×
//! at 2 threads, 1.5× at 4).
//!
//! **Measurement model.** The reproduction environment exposes a single
//! CPU core, so thread speedup cannot appear as wall-clock time. The
//! primary numbers therefore come from the task-schedule simulation
//! ([`sssp_core::parallel_sim`]): the run executes the same code
//! sequentially, records every task's duration and the barrier structure,
//! and the makespan on `T` workers is computed with an LPT scheduler.
//! Two series per graph:
//!
//! * `paper scheme` — Sec. VI-C: two coarse matrix-filter tasks +
//!   evenly-sized vector chunk tasks, serial relaxation;
//! * `improved` — the paper's proposed fix (ABL-PARIMPROVED):
//!   fine-grained filtering + chunked relaxation.
//!
//! On a real multi-core machine, [`run_wallclock`] measures the actual
//! threaded implementations instead (also used by the Criterion bench).

use graphdata::{paper_suite, SuiteScale};
use sssp_core::parallel_sim::{delta_stepping_simulated, SimConfig};
use sssp_core::{fused, parallel, parallel_improved};
use taskpool::ThreadPool;

use crate::experiments::geomean;
use crate::measure::{measure_min, Reps};
use crate::report::{Json, ToJson};
use crate::bench_source;

/// One graph's scaling measurements.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Dataset name.
    pub name: String,
    /// Vertex count.
    pub nv: usize,
    /// Fused sequential baseline, milliseconds.
    pub sequential_ms: f64,
    /// Thread counts measured.
    pub threads: Vec<usize>,
    /// Paper-scheme speedups over the sequential baseline, per thread
    /// count.
    pub parallel_speedup: Vec<f64>,
    /// Improved-scheme speedups, per thread count.
    pub improved_speedup: Vec<f64>,
}

impl ToJson for Fig4Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("nv", self.nv.to_json()),
            ("sequential_ms", self.sequential_ms.to_json()),
            ("threads", self.threads.to_json()),
            ("parallel_speedup", self.parallel_speedup.to_json()),
            ("improved_speedup", self.improved_speedup.to_json()),
        ])
    }
}

/// Run FIG4 with the schedule simulation (primary mode; single-core safe).
pub fn run(scale: SuiteScale, threads: &[usize], reps: Reps) -> Vec<Fig4Row> {
    let delta = 1.0;
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            let baseline = fused::delta_stepping_fused(g, src, delta);
            let seq_t = measure_min(
                || {
                    std::hint::black_box(fused::delta_stepping_fused(g, src, delta));
                },
                reps,
            );

            // Record one trace per scheme per sample; keep the trace with
            // the least total work (least timer noise).
            let best_trace = |cfg: SimConfig| {
                let mut best: Option<sssp_core::schedule::ScheduleTrace> = None;
                for _ in 0..reps.samples.max(1) {
                    let (r, trace) = delta_stepping_simulated(g, src, delta, cfg);
                    assert_eq!(r.dist, baseline.dist, "{}: simulation disagrees", d.name);
                    let better = best
                        .as_ref()
                        .is_none_or(|b| trace.total_work() < b.total_work());
                    if better {
                        best = Some(trace);
                    }
                }
                best.expect("samples >= 1")
            };
            let trace_paper = best_trace(SimConfig::paper());
            let trace_improved = best_trace(SimConfig::improved());

            let parallel_speedup = threads
                .iter()
                .map(|&t| trace_paper.speedup_vs(seq_t, t))
                .collect();
            let improved_speedup = threads
                .iter()
                .map(|&t| trace_improved.speedup_vs(seq_t, t))
                .collect();
            Fig4Row {
                name: d.name,
                nv: g.num_vertices(),
                sequential_ms: seq_t.as_secs_f64() * 1e3,
                threads: threads.to_vec(),
                parallel_speedup,
                improved_speedup,
            }
        })
        .collect()
}

/// Wall-clock variant: measure the real threaded implementations. Only
/// meaningful on a machine with multiple cores.
pub fn run_wallclock(scale: SuiteScale, threads: &[usize], reps: Reps) -> Vec<Fig4Row> {
    let delta = 1.0;
    let pools: Vec<ThreadPool> = threads
        .iter()
        .map(|&t| ThreadPool::with_threads(t).expect("pool"))
        .collect();
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            let baseline = fused::delta_stepping_fused(g, src, delta);
            let seq_t = measure_min(
                || {
                    std::hint::black_box(fused::delta_stepping_fused(g, src, delta));
                },
                reps,
            );
            let mut parallel_speedup = Vec::with_capacity(threads.len());
            let mut improved_speedup = Vec::with_capacity(threads.len());
            for pool in &pools {
                let pr = parallel::delta_stepping_parallel(pool, g, src, delta);
                assert_eq!(pr.dist, baseline.dist, "{}: parallel disagrees", d.name);
                let pi = parallel_improved::delta_stepping_parallel_improved(pool, g, src, delta);
                assert_eq!(pi.dist, baseline.dist, "{}: improved disagrees", d.name);

                let pt = measure_min(
                    || {
                        std::hint::black_box(parallel::delta_stepping_parallel(
                            pool, g, src, delta,
                        ));
                    },
                    reps,
                );
                parallel_speedup.push(seq_t.as_secs_f64() / pt.as_secs_f64());
                let it = measure_min(
                    || {
                        std::hint::black_box(
                            parallel_improved::delta_stepping_parallel_improved(
                                pool, g, src, delta,
                            ),
                        );
                    },
                    reps,
                );
                improved_speedup.push(seq_t.as_secs_f64() / it.as_secs_f64());
            }
            Fig4Row {
                name: d.name,
                nv: g.num_vertices(),
                sequential_ms: seq_t.as_secs_f64() * 1e3,
                threads: threads.to_vec(),
                parallel_speedup,
                improved_speedup,
            }
        })
        .collect()
}

/// Geometric-mean speedup across graphs for thread index `k` of the paper
/// scheme (the 1.44× / 1.5× numbers).
pub fn average_parallel_speedup(rows: &[Fig4Row], k: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.parallel_speedup[k]).collect::<Vec<_>>())
}

/// Same for the improved scheme.
pub fn average_improved_speedup(rows: &[Fig4Row], k: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.improved_speedup[k]).collect::<Vec<_>>())
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[Fig4Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            let mut row = vec![r.name.clone(), r.nv.to_string(), format!("{:.3}", r.sequential_ms)];
            for k in 0..r.threads.len() {
                row.push(format!("{:.2}", r.parallel_speedup[k]));
            }
            for k in 0..r.threads.len() {
                row.push(format!("{:.2}", r.improved_speedup[k]));
            }
            row
        })
        .collect()
}

/// Build the header matching [`to_table`] for the given thread counts.
pub fn header(threads: &[usize]) -> Vec<String> {
    let mut h = vec!["graph".to_string(), "|V|".to_string(), "seq_ms".to_string()];
    for &t in threads {
        h.push(format!("par x{t}"));
    }
    for &t in threads {
        h.push(format!("impr x{t}"));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let rows = run(
            SuiteScale::Smoke,
            &[1, 2, 4],
            Reps { warmup: 0, samples: 1 },
        );
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.parallel_speedup.len(), 3);
            assert_eq!(r.improved_speedup.len(), 3);
            for &s in r.parallel_speedup.iter().chain(r.improved_speedup.iter()) {
                assert!(s.is_finite() && s > 0.0);
            }
            // Simulated speedup is monotone in workers.
            for w in r.parallel_speedup.windows(2) {
                assert!(w[1] >= w[0] * 0.999, "{}: {:?}", r.name, r.parallel_speedup);
            }
        }
        let h = header(&[1, 2, 4]);
        assert_eq!(to_table(&rows)[0].len(), h.len());
    }

    #[test]
    fn wallclock_mode_runs() {
        let rows = run_wallclock(
            SuiteScale::Smoke,
            &[1, 2],
            Reps { warmup: 0, samples: 1 },
        );
        assert_eq!(rows.len(), 4);
        for r in &rows {
            for &s in r.parallel_speedup.iter().chain(r.improved_speedup.iter()) {
                assert!(s.is_finite() && s > 0.0);
            }
        }
    }
}
