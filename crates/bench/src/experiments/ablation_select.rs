//! ABL-SELECT — decomposing the Fig. 3 fusion win: how much of the 3.7×
//! does a better *library* (single-pass `select` filters, no empty-bucket
//! iterations) already deliver, before any user-side fusion?
//!
//! Three points per graph:
//!
//! 1. `two_apply` — the Fig. 2 transcription ([`sssp_core::gblas_impl`]);
//! 2. `select`   — same library-call structure with the paper's lessons
//!    applied ([`sssp_core::gblas_select`]);
//! 3. `fused`    — the direct fused implementation ([`sssp_core::fused`]).

use graphdata::{paper_suite, SuiteScale};
use sssp_core::{fused, gblas_impl, gblas_select};

use crate::experiments::geomean;
use crate::measure::{measure_min, Reps};
use crate::report::{Json, ToJson};
use crate::bench_source;

/// One graph's three-way comparison.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Dataset name.
    pub name: String,
    /// Vertex count.
    pub nv: usize,
    /// Fig. 2 two-apply implementation, milliseconds.
    pub two_apply_ms: f64,
    /// Select-based implementation, milliseconds.
    pub select_ms: f64,
    /// Fused direct implementation, milliseconds.
    pub fused_ms: f64,
    /// `two_apply / select`: the library-level win.
    pub select_speedup: f64,
    /// `two_apply / fused`: the full fusion win (Fig. 3's bar).
    pub fused_speedup: f64,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("nv", self.nv.to_json()),
            ("two_apply_ms", self.two_apply_ms.to_json()),
            ("select_ms", self.select_ms.to_json()),
            ("fused_ms", self.fused_ms.to_json()),
            ("select_speedup", self.select_speedup.to_json()),
            ("fused_speedup", self.fused_speedup.to_json()),
        ])
    }
}

/// Run the three-way ablation at `scale`.
pub fn run(scale: SuiteScale, reps: Reps) -> Vec<AblationRow> {
    let delta = 1.0;
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            let a = g.to_adjacency();
            let baseline = fused::delta_stepping_fused(g, src, delta);
            let sel = gblas_select::sssp_delta_step_select(&a, delta, src);
            assert_eq!(sel.dist, baseline.dist, "{}: select disagrees", d.name);
            let two = gblas_impl::sssp_delta_step(&a, delta, src);
            assert_eq!(two.dist, baseline.dist, "{}: two-apply disagrees", d.name);

            let two_t = measure_min(
                || {
                    std::hint::black_box(gblas_impl::sssp_delta_step(&a, delta, src));
                },
                reps,
            );
            let sel_t = measure_min(
                || {
                    std::hint::black_box(gblas_select::sssp_delta_step_select(&a, delta, src));
                },
                reps,
            );
            let fus_t = measure_min(
                || {
                    std::hint::black_box(fused::delta_stepping_fused(g, src, delta));
                },
                reps,
            );
            AblationRow {
                name: d.name,
                nv: g.num_vertices(),
                two_apply_ms: two_t.as_secs_f64() * 1e3,
                select_ms: sel_t.as_secs_f64() * 1e3,
                fused_ms: fus_t.as_secs_f64() * 1e3,
                select_speedup: two_t.as_secs_f64() / sel_t.as_secs_f64(),
                fused_speedup: two_t.as_secs_f64() / fus_t.as_secs_f64(),
            }
        })
        .collect()
}

/// Geomean of the library-level (select) win.
pub fn average_select_speedup(rows: &[AblationRow]) -> f64 {
    geomean(&rows.iter().map(|r| r.select_speedup).collect::<Vec<_>>())
}

/// Geomean of the full fusion win.
pub fn average_fused_speedup(rows: &[AblationRow]) -> f64 {
    geomean(&rows.iter().map(|r| r.fused_speedup).collect::<Vec<_>>())
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[AblationRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nv.to_string(),
                format!("{:.3}", r.two_apply_ms),
                format!("{:.3}", r.select_ms),
                format!("{:.3}", r.fused_ms),
                format!("{:.2}", r.select_speedup),
                format!("{:.2}", r.fused_speedup),
            ]
        })
        .collect()
}

/// Header matching [`to_table`].
pub const HEADER: [&str; 7] = [
    "graph",
    "|V|",
    "two_apply_ms",
    "select_ms",
    "fused_ms",
    "select_x",
    "fused_x",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_three_way() {
        let rows = run(SuiteScale::Smoke, Reps { warmup: 0, samples: 1 });
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.select_speedup > 0.0 && r.fused_speedup > 0.0);
            // The fused code must beat both library variants.
            assert!(
                r.fused_ms <= r.select_ms,
                "{}: fused slower than select variant",
                r.name
            );
        }
    }
}
