//! ABL-DELTA — the Sec. VII discussion made quantitative: with Δ = 1 on
//! unit weights, delta-stepping degenerates to Dijkstra (one vertex class
//! per bucket); larger Δ trades more re-relaxation for fewer, bigger
//! phases. This sweep runs the fused implementation across Δ on the
//! *weighted* suite and records both time and phase structure.

use graphdata::suite::weighted_suite;
use graphdata::SuiteScale;
use sssp_core::dijkstra::dijkstra;
use sssp_core::fused;

use crate::measure::{measure_min, Reps};
use crate::report::{Json, ToJson};
use crate::bench_source;

/// One (graph, Δ) measurement.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Dataset name (weighted variant).
    pub name: String,
    /// The Δ used.
    pub delta: f64,
    /// Fused delta-stepping time, milliseconds.
    pub time_ms: f64,
    /// Dijkstra baseline on the same graph/source, milliseconds.
    pub dijkstra_ms: f64,
    /// Buckets processed (outer iterations).
    pub buckets: usize,
    /// Light relaxation phases.
    pub light_phases: usize,
    /// Total edge relaxations attempted.
    pub relaxations: u64,
}

impl ToJson for DeltaRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("delta", self.delta.to_json()),
            ("time_ms", self.time_ms.to_json()),
            ("dijkstra_ms", self.dijkstra_ms.to_json()),
            ("buckets", self.buckets.to_json()),
            ("light_phases", self.light_phases.to_json()),
            ("relaxations", self.relaxations.to_json()),
        ])
    }
}

/// Sweep `deltas` over the weighted suite at `scale`.
pub fn run(scale: SuiteScale, deltas: &[f64], reps: Reps) -> Vec<DeltaRow> {
    let mut rows = Vec::new();
    for d in weighted_suite(scale) {
        let g = &d.graph;
        let src = bench_source(g);
        let dj = dijkstra(g, src);
        let dj_t = measure_min(
            || {
                std::hint::black_box(dijkstra(g, src));
            },
            reps,
        );
        for &delta in deltas {
            let r = fused::delta_stepping_fused(g, src, delta);
            assert!(
                r.approx_eq(&dj, 1e-9).is_ok(),
                "{}: delta {delta} disagrees with Dijkstra",
                d.name
            );
            let t = measure_min(
                || {
                    std::hint::black_box(fused::delta_stepping_fused(g, src, delta));
                },
                reps,
            );
            rows.push(DeltaRow {
                name: d.name.clone(),
                delta,
                time_ms: t.as_secs_f64() * 1e3,
                dijkstra_ms: dj_t.as_secs_f64() * 1e3,
                buckets: r.stats.buckets_processed,
                light_phases: r.stats.light_phases,
                relaxations: r.stats.relaxations,
            });
        }
    }
    rows
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[DeltaRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.delta),
                format!("{:.3}", r.time_ms),
                format!("{:.3}", r.dijkstra_ms),
                r.buckets.to_string(),
                r.light_phases.to_string(),
                r.relaxations.to_string(),
            ]
        })
        .collect()
}

/// Header matching [`to_table`].
pub const HEADER: [&str; 7] = [
    "graph",
    "delta",
    "time_ms",
    "dijkstra_ms",
    "buckets",
    "light_phases",
    "relaxations",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_structure_follows_delta() {
        let rows = run(
            SuiteScale::Smoke,
            &[0.25, 1.0],
            Reps { warmup: 0, samples: 1 },
        );
        // 4 weighted graphs x 2 deltas.
        assert_eq!(rows.len(), 8);
        // Bigger delta => fewer (or equal) buckets on each graph.
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].name, pair[1].name);
            assert!(
                pair[0].buckets >= pair[1].buckets,
                "{}: buckets {} @0.25 vs {} @1.0",
                pair[0].name,
                pair[0].buckets,
                pair[1].buckets
            );
        }
    }
}
