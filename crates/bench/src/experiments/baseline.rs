//! BASELINE — the tracked perf baseline behind `BENCH_sssp.json`.
//!
//! Times the fig3/fig4 workloads (the [`paper_suite`] graphs with unit
//! weights, Δ = 1, highest-out-degree source, plus the bench-only
//! [`gate_extras`] road graphs) across four implementations:
//!
//! * `fused` — the sequential fused reference; every other entry is
//!   normalized against it, so the regression check compares
//!   machine-independent ratios rather than raw milliseconds;
//! * `improved-atomic` — the prior parallel scheme (dense atomic request
//!   vector, split rebuilt per call), kept as the "before" datapoint;
//! * `improved-push` — the request-buffer path with the density oracle
//!   pinned to push: the pre-direction-optimization behaviour, kept so
//!   the oracle's win (or cost) per graph is a committed datapoint;
//! * `improved` — the request-buffer rebuild driven through
//!   [`SsspEngine`] with automatic push/pull direction selection. Its
//!   rows also record how many light epochs the oracle sent each way.
//!
//! All four are cross-checked for identical distances (and push/pull for
//! identical stats — the direction switch must be invisible) before
//! anything is timed.

use gblas::direction::{self, Direction};
use graphdata::suite::Dataset;
use graphdata::{gen, paper_suite, CsrGraph, SuiteScale};
use sssp_core::engine::SsspEngine;
use sssp_core::parallel_atomic::delta_stepping_parallel_atomic;
use sssp_core::stats::SsspStats;
use sssp_core::{dijkstra, fused, Implementation, RunBudget};
use taskpool::ThreadPool;

use crate::bench_source;
use crate::measure::{measure_median_min, Reps};
use crate::report::{Json, ToJson};

/// Δ for the unit-weight suite (the paper's fig3/fig4 setting).
pub const DELTA: f64 = 1.0;

/// One (graph, implementation) measurement.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Suite scale this entry was measured at (`smoke` / `default` / …).
    pub scale: String,
    /// Dataset name.
    pub graph: String,
    /// Vertex count.
    pub nv: usize,
    /// Directed edge count.
    pub ne: usize,
    /// Implementation name (`fused` / `improved-atomic` / `improved-push`
    /// / `improved`).
    pub impl_name: String,
    /// Worker threads (1 for the sequential entry).
    pub threads: usize,
    /// Median wall time, milliseconds.
    pub median_ms: f64,
    /// Minimum wall time, milliseconds. The regression check compares
    /// minima: external interference only ever *adds* time, so the
    /// minimum is the stable estimator on shared/loaded machines.
    pub min_ms: f64,
    /// Run statistics (identical across implementations by construction;
    /// recorded so a stats drift fails the regression check too).
    pub stats: SsspStats,
    /// `true` when this graph's fused run finished under
    /// [`MIN_TIMED_MS`] at *measurement* time: the entry is recorded as
    /// `"timing": "stats-only"` in `BENCH_sssp.json` and the regression
    /// check never compares its wall times, only its counters. Decided
    /// when the baseline is generated — not re-derived from fresh
    /// timings — so a graph near the floor cannot flap in and out of the
    /// timing gate between CI runs.
    pub stats_only: bool,
    /// For the auto-direction `improved` entry: how many light epochs the
    /// density oracle sent each way, `(push, pull)`, observed on the
    /// correctness-gate run. `None` for entries that never consult the
    /// oracle or have it pinned.
    pub directions: Option<(u64, u64)>,
}

impl ToJson for BenchEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scale", self.scale.to_json()),
            ("graph", self.graph.to_json()),
            ("nv", self.nv.to_json()),
            ("ne", self.ne.to_json()),
            ("impl", self.impl_name.to_json()),
            ("threads", self.threads.to_json()),
            ("median_ms", self.median_ms.to_json()),
            ("min_ms", self.min_ms.to_json()),
            (
                "timing",
                if self.stats_only { "stats-only" } else { "timed" }.to_json(),
            ),
            ("relaxations", self.stats.relaxations.to_json()),
            ("improvements", self.stats.improvements.to_json()),
            ("buckets_processed", self.stats.buckets_processed.to_json()),
            ("light_phases", self.stats.light_phases.to_json()),
            ("heavy_phases", self.stats.heavy_phases.to_json()),
        ];
        if let Some((push, pull)) = self.directions {
            fields.push(("push_epochs", push.to_json()));
            fields.push(("pull_epochs", pull.to_json()));
        }
        Json::obj(fields)
    }
}

/// Canonical lowercase name for a suite scale, shared with the
/// stepping strategy gate.
pub fn scale_name(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Smoke => "smoke",
        SuiteScale::Default => "default",
        SuiteScale::Large => "large",
    }
}

/// Bench-only datasets that feed the `--check` gate but are *not* part
/// of [`paper_suite`] (whose composition is pinned by the suite tests):
/// long thin grid "road" networks whose frontiers stay sparse for
/// hundreds of epochs — the workload the push path must keep winning on,
/// committed so the direction oracle is graded on both sides of its
/// switch.
pub fn gate_extras(scale: SuiteScale) -> Vec<Dataset> {
    let road = |name: &str, width: usize, height: usize| Dataset {
        name: name.to_string(),
        family: "road",
        graph: CsrGraph::from_edge_list(&gen::grid2d(width, height)).expect("grid is valid"),
    };
    match scale {
        SuiteScale::Smoke => vec![road("road-256", 4, 64)],
        SuiteScale::Default => vec![road("road-32768", 8, 4096)],
        SuiteScale::Large => Vec::new(),
    }
}

/// Pins the density oracle for the duration of a measurement block and
/// restores automatic selection even if a sample panics.
struct ForcedDirection;

impl ForcedDirection {
    fn new(dir: Direction) -> Self {
        direction::set_direction_override(Some(dir));
        ForcedDirection
    }
}

impl Drop for ForcedDirection {
    fn drop(&mut self) {
        direction::set_direction_override(None);
    }
}

/// Run the baseline workloads at `scale` with `threads` workers.
pub fn run(scale: SuiteScale, threads: usize, reps: Reps) -> Vec<BenchEntry> {
    let pool = ThreadPool::with_threads(threads).expect("thread count validated by CLI");
    let sname = scale_name(scale);
    let mut entries = Vec::new();
    for d in paper_suite(scale).into_iter().chain(gate_extras(scale)) {
        let g = &d.graph;
        let src = bench_source(g);

        // Correctness gate: all four implementations must agree with
        // Dijkstra (and each other) before any of them is timed.
        let dj = dijkstra::dijkstra(g, src);
        let fu = fused::delta_stepping_fused(g, src, DELTA);
        let at = delta_stepping_parallel_atomic(&pool, g, src, DELTA);
        let mut engine = SsspEngine::new(g);
        direction::reset_decision_counters();
        let (im, _) = engine
            .run_parallel_improved(&pool, src, DELTA, &mut RunBudget::unlimited())
            .expect("suite graphs are valid");
        // One run's worth of oracle decisions, recorded on the auto entry
        // so the committed baseline shows which graphs actually switch.
        let decisions = direction::decision_counters();
        assert_eq!(fu.dist, dj.dist, "{}: fused disagrees with Dijkstra", d.name);
        assert_eq!(at.dist, dj.dist, "{}: atomic disagrees with Dijkstra", d.name);
        assert_eq!(im.dist, dj.dist, "{}: improved disagrees with Dijkstra", d.name);
        assert_eq!(im.stats, fu.stats, "{}: stats drift", d.name);

        let ms = |(med, min): (std::time::Duration, std::time::Duration)| {
            (med.as_secs_f64() * 1e3, min.as_secs_f64() * 1e3)
        };

        // Measure fused first: its minimum decides — once, at baseline
        // generation — whether this graph's entries are timing-eligible
        // or stats-only.
        let fused_t = ms(measure_median_min(
            || {
                std::hint::black_box(fused::delta_stepping_fused(g, src, DELTA));
            },
            reps,
        ));
        let stats_only = fused_t.1 < MIN_TIMED_MS;

        let entry = |impl_name: &str,
                     threads: usize,
                     (median_ms, min_ms): (f64, f64),
                     stats: SsspStats| BenchEntry {
            scale: sname.to_string(),
            graph: d.name.clone(),
            nv: g.num_vertices(),
            ne: g.num_edges(),
            impl_name: impl_name.to_string(),
            threads,
            median_ms,
            min_ms,
            stats,
            stats_only,
            directions: None,
        };

        entries.push(entry(Implementation::Fused.name(), 1, fused_t, fu.stats.clone()));

        let t = measure_median_min(
            || {
                std::hint::black_box(delta_stepping_parallel_atomic(&pool, g, src, DELTA));
            },
            reps,
        );
        entries.push(entry(
            Implementation::ParallelAtomic.name(),
            threads,
            ms(t),
            at.stats.clone(),
        ));

        // Forced-push "before" datapoint: the same engine/cache-hot path
        // with the oracle pinned to push, so the auto row's win (or
        // cost) against the pre-direction-optimization behaviour is a
        // committed number per graph.
        {
            let _pin = ForcedDirection::new(Direction::Push);
            let (pu, _) = engine
                .run_parallel_improved(&pool, src, DELTA, &mut RunBudget::unlimited())
                .expect("already ran once above");
            assert_eq!(pu.dist, dj.dist, "{}: forced push disagrees with Dijkstra", d.name);
            assert_eq!(pu.stats, im.stats, "{}: direction switch leaked into stats", d.name);
            let t = measure_median_min(
                || {
                    let (r, _) = engine
                        .run_parallel_improved(&pool, src, DELTA, &mut RunBudget::unlimited())
                        .expect("already ran once above");
                    std::hint::black_box(r);
                },
                reps,
            );
            entries.push(entry("improved-push", threads, ms(t), pu.stats.clone()));
        }

        // The engine already holds the Δ=1 split from the correctness
        // gate, so every timed sample exercises the cache-hit path —
        // the multi-source shape this PR optimizes for.
        let t = measure_median_min(
            || {
                let (r, _) = engine
                    .run_parallel_improved(&pool, src, DELTA, &mut RunBudget::unlimited())
                    .expect("already ran once above");
                std::hint::black_box(r);
            },
            reps,
        );
        let mut auto_entry = entry(
            Implementation::ParallelImproved.name(),
            threads,
            ms(t),
            im.stats.clone(),
        );
        auto_entry.directions = Some(decisions);
        entries.push(auto_entry);
    }
    entries
}

/// Wrap entries (possibly from several scales) in the `BENCH_sssp.json`
/// document shape: `{"delta": …, "entries": […]}`.
pub fn to_document(entries: &[BenchEntry]) -> Json {
    Json::obj(vec![
        ("delta", DELTA.to_json()),
        (
            // The push/pull switch threshold the entries were measured
            // under: pull when frontier_light_edges * denom >= total
            // light edges.
            "direction",
            Json::obj(vec![(
                "pull_edge_fraction_denom",
                direction::PULL_EDGE_FRACTION_DENOM.to_json(),
            )]),
        ),
        ("entries", entries.to_json()),
    ])
}

/// Table rows for the console report.
pub fn to_table(entries: &[BenchEntry]) -> Vec<Vec<String>> {
    entries
        .iter()
        .map(|e| {
            vec![
                e.scale.clone(),
                e.graph.clone(),
                e.impl_name.clone(),
                e.threads.to_string(),
                format!("{:.3}", e.median_ms),
                e.stats.relaxations.to_string(),
            ]
        })
        .collect()
}

/// Console/CSV header matching [`to_table`].
pub const HEADER: [&str; 6] = ["scale", "graph", "impl", "threads", "median_ms", "relaxations"];

/// Maximum allowed regression of the fused-normalized ratio before the
/// check fails (25 %).
pub const TOLERANCE: f64 = 0.25;

/// Fused-time floor (milliseconds) for *timing* comparison. Below it a
/// run finishes in microseconds and even minimum-of-N wall times jitter
/// several-fold on a shared core, so those datapoints are only checked
/// for presence and stats equality, never for speed.
pub const MIN_TIMED_MS: f64 = 1.0;

/// What [`check_against`] concluded.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Human-readable failure lines (empty = check passed).
    pub failures: Vec<String>,
    /// Datapoints whose timing ratio was actually compared.
    pub timed: usize,
    /// Datapoints skipped as sub-[`MIN_TIMED_MS`] (still stats-checked).
    pub skipped: usize,
}

impl CheckReport {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a fresh run against a parsed `BENCH_sssp.json` document.
///
/// Two independent gates:
///
/// * **Stats** — the counters ([`SsspStats`]) are bit-deterministic, so
///   any `(scale, graph, impl)` present on both sides must match
///   *exactly*; a drift means the algorithm changed behaviour.
/// * **Timing** — raw times are machine-dependent, so each parallel
///   entry is normalized to the *same run's* fused time on the same
///   graph, and the fresh ratio must not exceed the baseline ratio by
///   more than [`TOLERANCE`]. Minima (not medians) are compared —
///   interference only ever adds time, so the minimum is far more
///   stable on shared machines. Graphs the baseline marks
///   `"timing": "stats-only"` are never time-compared — the decision was
///   made once when the baseline was generated, so a graph near the
///   [`MIN_TIMED_MS`] floor cannot flake in and out of the gate as CI
///   machines speed up or slow down. The dynamic floor still applies on
///   top, for baselines predating the marker.
///
/// Datapoints the baseline has but the fresh run is missing fail only
/// when the fresh run covered that scale at all (a `--smoke` run
/// legitimately skips the default-scale section).
pub fn check_against(baseline: &Json, fresh: &[BenchEntry]) -> CheckReport {
    let mut report = CheckReport::default();

    let Some(entries) = baseline.get("entries").and_then(Json::as_arr) else {
        report.failures.push("baseline has no \"entries\" array".into());
        return report;
    };

    // Stats gate: exact counter equality wherever both sides have data.
    const COUNTERS: [&str; 5] = [
        "relaxations",
        "improvements",
        "buckets_processed",
        "light_phases",
        "heavy_phases",
    ];
    for e in fresh {
        let Some(base) = entries.iter().find(|b| {
            b.get("scale").and_then(Json::as_str) == Some(&e.scale)
                && b.get("graph").and_then(Json::as_str) == Some(&e.graph)
                && b.get("impl").and_then(Json::as_str) == Some(&e.impl_name)
        }) else {
            continue;
        };
        let fresh_counters = [
            e.stats.relaxations,
            e.stats.improvements,
            e.stats.buckets_processed as u64,
            e.stats.light_phases as u64,
            e.stats.heavy_phases as u64,
        ];
        for (name, have) in COUNTERS.iter().zip(fresh_counters) {
            if let Some(want) = base.get(name).and_then(Json::as_u64) {
                if want != have {
                    report.failures.push(format!(
                        "{}/{}/{}: {} drifted from {} to {} (stats are deterministic)",
                        e.scale, e.graph, e.impl_name, name, want, have
                    ));
                }
            }
        }
    }

    // Graphs the baseline pinned as stats-only: timing never applies.
    let base_stats_only: std::collections::BTreeSet<(String, String)> = entries
        .iter()
        .filter_map(|e| {
            if e.get("timing").and_then(Json::as_str) != Some("stats-only") {
                return None;
            }
            Some((
                e.get("scale").and_then(Json::as_str)?.to_string(),
                e.get("graph").and_then(Json::as_str)?.to_string(),
            ))
        })
        .collect();

    // Timing gate on fused-normalized minima.
    let fresh_ratios = ratio_map(
        fresh
            .iter()
            .map(|e| (e.scale.clone(), e.graph.clone(), e.impl_name.clone(), e.min_ms)),
    );
    let base_iter = entries.iter().filter_map(|e| {
        Some((
            e.get("scale").and_then(Json::as_str)?.to_string(),
            e.get("graph").and_then(Json::as_str)?.to_string(),
            e.get("impl").and_then(Json::as_str)?.to_string(),
            e.get("min_ms").or_else(|| e.get("median_ms")).and_then(Json::as_f64)?,
        ))
    });
    let base_ratios = ratio_map(base_iter);

    for ((scale, graph, impl_name), (base_ratio, base_fused_ms)) in &base_ratios {
        let Some((fresh_ratio, fused_ms)) =
            fresh_ratios.get(&(scale.clone(), graph.clone(), impl_name.clone()))
        else {
            if fresh.iter().any(|e| &e.scale == scale) {
                report
                    .failures
                    .push(format!("{scale}/{graph}/{impl_name}: missing from fresh run"));
            }
            continue;
        };
        if base_stats_only.contains(&(scale.clone(), graph.clone()))
            || *fused_ms < MIN_TIMED_MS
            || *base_fused_ms < MIN_TIMED_MS
        {
            report.skipped += 1;
            continue;
        }
        report.timed += 1;
        if *fresh_ratio > base_ratio * (1.0 + TOLERANCE) {
            report.failures.push(format!(
                "{scale}/{graph}/{impl_name}: ratio-vs-fused {fresh_ratio:.3} exceeds \
                 baseline {base_ratio:.3} by more than {:.0}%",
                TOLERANCE * 100.0
            ));
        }
    }
    report
}

type RatioKey = (String, String, String);

/// Normalize each entry's time to the fused time on the same
/// (scale, graph); fused rows themselves are excluded (always 1.0). The
/// fused time rides along so the caller can scale its tolerance.
fn ratio_map(
    entries: impl Iterator<Item = (String, String, String, f64)>,
) -> std::collections::BTreeMap<RatioKey, (f64, f64)> {
    let rows: Vec<_> = entries.collect();
    let mut fused: std::collections::BTreeMap<(String, String), f64> =
        std::collections::BTreeMap::new();
    for (scale, graph, impl_name, ms) in &rows {
        if impl_name == "fused" {
            fused.insert((scale.clone(), graph.clone()), *ms);
        }
    }
    let mut out = std::collections::BTreeMap::new();
    for (scale, graph, impl_name, ms) in rows {
        if impl_name == "fused" {
            continue;
        }
        if let Some(&f) = fused.get(&(scale.clone(), graph.clone())) {
            if f > 0.0 {
                out.insert((scale, graph, impl_name), (ms / f, f));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_entries() {
        let entries = run(SuiteScale::Smoke, 2, Reps { warmup: 0, samples: 1 });
        // (4 smoke graphs + 1 road gate extra) x 4 implementations.
        assert_eq!(entries.len(), 20);
        assert!(entries.iter().any(|e| e.graph == "road-256"));
        for chunk in entries.chunks(4) {
            assert_eq!(chunk[0].impl_name, "fused");
            assert_eq!(chunk[1].impl_name, "improved-atomic");
            assert_eq!(chunk[2].impl_name, "improved-push");
            assert_eq!(chunk[3].impl_name, "improved");
            // All implementations agree on the counters — the direction
            // switch in particular must be invisible in the stats.
            for e in &chunk[1..] {
                assert_eq!(chunk[0].stats, e.stats, "{}/{}", e.graph, e.impl_name);
            }
            assert!(chunk.iter().all(|e| e.median_ms >= 0.0));
            // Only the auto entry records oracle decisions.
            assert!(chunk[3].directions.is_some(), "{}", chunk[3].graph);
            assert!(chunk[..3].iter().all(|e| e.directions.is_none()));
        }
    }

    #[test]
    fn check_accepts_its_own_document() {
        let entries = run(SuiteScale::Smoke, 1, Reps { warmup: 0, samples: 1 });
        let doc = to_document(&entries);
        let parsed = Json::parse(&doc.render()).unwrap();
        let report = check_against(&parsed, &entries);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn check_flags_regressions_and_gaps() {
        let mk = |impl_name: &str, ms: f64| BenchEntry {
            scale: "smoke".into(),
            graph: "g".into(),
            nv: 10,
            ne: 20,
            impl_name: impl_name.into(),
            threads: 2,
            median_ms: ms,
            min_ms: ms,
            stats: SsspStats::default(),
            stats_only: false,
            directions: None,
        };
        let baseline_doc = to_document(&[mk("fused", 1.0), mk("improved", 2.0)]);
        // Fresh ratio 4.0 vs baseline 2.0: > 25% regression.
        let report = check_against(&baseline_doc, &[mk("fused", 1.0), mk("improved", 4.0)]);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("ratio-vs-fused"));
        assert_eq!(report.timed, 1);
        // Within tolerance passes.
        let ok = check_against(&baseline_doc, &[mk("fused", 1.0), mk("improved", 2.3)]);
        assert!(ok.passed(), "{:?}", ok.failures);
        // Fresh run covering the scale but missing the impl is flagged.
        let gap = check_against(&baseline_doc, &[mk("fused", 1.0)]);
        assert_eq!(gap.failures.len(), 1);
        assert!(gap.failures[0].contains("missing"));
    }

    #[test]
    fn check_skips_timing_for_sub_millisecond_graphs() {
        let mk = |impl_name: &str, ms: f64| BenchEntry {
            scale: "smoke".into(),
            graph: "tiny".into(),
            nv: 10,
            ne: 20,
            impl_name: impl_name.into(),
            threads: 2,
            median_ms: ms,
            min_ms: ms,
            stats: SsspStats::default(),
            stats_only: false,
            directions: None,
        };
        // Fused under MIN_TIMED_MS: even a 5x ratio blow-up is ignored —
        // microsecond wall times on a shared core are pure noise.
        let baseline_doc = to_document(&[mk("fused", 0.5), mk("improved", 1.0)]);
        let report = check_against(&baseline_doc, &[mk("fused", 0.5), mk("improved", 5.0)]);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.timed, 0);
    }

    #[test]
    fn baseline_stats_only_marker_pins_the_skip_regardless_of_fresh_times() {
        let mk = |impl_name: &str, ms: f64, stats_only: bool| BenchEntry {
            scale: "smoke".into(),
            graph: "tiny".into(),
            nv: 10,
            ne: 20,
            impl_name: impl_name.into(),
            threads: 2,
            median_ms: ms,
            min_ms: ms,
            stats: SsspStats::default(),
            stats_only,
            directions: None,
        };
        // The baseline recorded this graph as stats-only even though its
        // times sit above the floor (say, the baseline machine was slow).
        // A fresh run with any ratio — here a 10x blow-up on a fused time
        // also above the floor — must still skip the timing gate: the
        // marker, not the fresh measurement, decides.
        let baseline_doc =
            to_document(&[mk("fused", 2.0, true), mk("improved", 4.0, true)]);
        let parsed = Json::parse(&baseline_doc.render()).unwrap();
        let report = check_against(
            &parsed,
            &[mk("fused", 2.0, false), mk("improved", 40.0, false)],
        );
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.timed, 0);
        // And the marker round-trips through the JSON document.
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        assert!(entries
            .iter()
            .all(|e| e.get("timing").and_then(Json::as_str) == Some("stats-only")));
    }

    #[test]
    fn check_flags_stats_drift_even_when_timing_skipped() {
        let mk = |impl_name: &str, relaxations: u64| BenchEntry {
            scale: "smoke".into(),
            graph: "tiny".into(),
            nv: 10,
            ne: 20,
            impl_name: impl_name.into(),
            threads: 2,
            median_ms: 0.1,
            min_ms: 0.1,
            stats: SsspStats {
                relaxations,
                ..SsspStats::default()
            },
            stats_only: true,
            directions: None,
        };
        let baseline_doc = to_document(&[mk("fused", 100), mk("improved", 100)]);
        let report =
            check_against(&baseline_doc, &[mk("fused", 100), mk("improved", 101)]);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("drifted"));
    }
}
