//! TAB-SETUP — the dataset inventory implicit in Sec. VI-A: which graphs
//! the evaluation runs on, with their sizes and shapes.

use graphdata::{paper_suite, SuiteScale};
use sssp_core::dijkstra::dijkstra;

use crate::report::{Json, ToJson};
use crate::bench_source;

/// One suite entry's vital statistics.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    /// Dataset name.
    pub name: String,
    /// Topology family.
    pub family: String,
    /// Vertex count.
    pub nv: usize,
    /// Directed edge count.
    pub ne: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Benchmark source vertex (maximum degree).
    pub source: usize,
    /// Vertices reachable from the source.
    pub reachable: usize,
    /// Largest finite distance from the source (hops, since unit weights).
    pub eccentricity: f64,
}

impl ToJson for DatasetRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("family", self.family.to_json()),
            ("nv", self.nv.to_json()),
            ("ne", self.ne.to_json()),
            ("mean_degree", self.mean_degree.to_json()),
            ("source", self.source.to_json()),
            ("reachable", self.reachable.to_json()),
            ("eccentricity", self.eccentricity.to_json()),
        ])
    }
}

/// Compute the inventory at `scale`.
pub fn run(scale: SuiteScale) -> Vec<DatasetRow> {
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            let r = dijkstra(g, src);
            DatasetRow {
                name: d.name,
                family: d.family.to_string(),
                nv: g.num_vertices(),
                ne: g.num_edges(),
                mean_degree: g.mean_degree(),
                source: src,
                reachable: r.reachable_count(),
                eccentricity: r.eccentricity().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[DatasetRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.family.clone(),
                r.nv.to_string(),
                r.ne.to_string(),
                format!("{:.2}", r.mean_degree),
                r.source.to_string(),
                r.reachable.to_string(),
                format!("{:.0}", r.eccentricity),
            ]
        })
        .collect()
}

/// Header matching [`to_table`].
pub const HEADER: [&str; 8] = [
    "graph",
    "family",
    "|V|",
    "|E|",
    "deg",
    "source",
    "reachable",
    "ecc",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_inventory() {
        let rows = run(SuiteScale::Smoke);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.reachable > 1, "{}: source reaches nothing", r.name);
            assert!(r.eccentricity >= 1.0);
            assert!(r.mean_degree > 0.0);
        }
        // The grid has a much larger diameter than the RMAT graph of
        // comparable size — the topology contrast the suite exists for.
        let grid = rows.iter().find(|r| r.family == "grid").unwrap();
        let rmat = rows.iter().find(|r| r.family == "rmat").unwrap();
        assert!(grid.eccentricity > rmat.eccentricity);
    }
}
