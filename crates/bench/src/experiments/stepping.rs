//! STEPPING — the generalized-stepping strategy gate behind the
//! strategy rows of `BENCH_sssp.json`.
//!
//! The paper's framing is that classic Δ-stepping, ρ-stepping and
//! Δ*-stepping are points on one lattice of frontier-extraction
//! policies, and that on real-weighted power-law graphs the generalized
//! policies do measurably less work than classic Δ = 1. This experiment
//! commits that claim as a regression-checked datapoint: weighted rmat
//! and Erdős–Rényi gate graphs, one entry per strategy, with the
//! ρ-stepping relaxation count *asserted* below the classic count at
//! generation time — a baseline that no longer shows the win cannot be
//! produced.
//!
//! Entries reuse [`BenchEntry`], so they ride the same stats-drift and
//! fused-normalized timing gates as the main baseline: each graph also
//! records a sequential `fused` row for normalization.

use graphdata::suite::Dataset;
use graphdata::{gen, SuiteScale, WeightModel};
use sssp_core::engine::SsspEngine;
use sssp_core::{dijkstra, fused, RunBudget, SteppingStrategy};
use taskpool::ThreadPool;

use super::baseline::{scale_name, BenchEntry, MIN_TIMED_MS};
use crate::bench_source;
use crate::measure::{measure_median_min, Reps};

/// Δ for the classic control and for bucket indexing inside Δ*. The
/// paper's fig3/fig4 setting, kept so "strategy vs classic Δ = 1" is an
/// apples-to-apples comparison with the main baseline.
pub const DELTA: f64 = 1.0;

/// ρ for the `stepping-rho` rows: small enough to batch the frontier on
/// every gate graph, large enough to keep phase counts reasonable.
pub const RHO: usize = 64;

/// Bucket-fuse factor for the `stepping-delta-star` rows.
pub const DELTA_STAR_FACTOR: f64 = 4.0;

/// The strategy sweep, in emission order after the `fused` row.
pub fn strategies() -> [(&'static str, SteppingStrategy); 3] {
    [
        ("stepping-classic", SteppingStrategy::Classic),
        ("stepping-rho", SteppingStrategy::Rho(RHO)),
        ("stepping-delta-star", SteppingStrategy::DeltaStar(DELTA_STAR_FACTOR)),
    ]
}

/// Real-weighted rmat and Erdős–Rényi gate graphs. Weights are uniform
/// in `(0, 1)` so classic Δ = 1 collapses every edge into one light
/// bucket per unit of distance — the regime where extraction policy,
/// not bucket arithmetic, decides how much redundant work happens.
pub fn gate_graphs(scale: SuiteScale) -> Vec<Dataset> {
    let weighted = |name: &str, mut el: graphdata::EdgeList, seed: u64| {
        el.symmetrize();
        graphdata::weights::assign_symmetric(
            &mut el,
            WeightModel::UniformFloat { lo: 1e-3, hi: 1.0 },
            seed,
        );
        Dataset {
            name: name.to_string(),
            family: "stepping-gate",
            graph: graphdata::CsrGraph::from_edge_list(&el).expect("generated graphs are valid"),
        }
    };
    match scale {
        SuiteScale::Smoke => vec![
            weighted("rmat9-w", gen::rmat(gen::RmatParams::graph500(9, 8), 402), 41),
            weighted("er-256-w", gen::gnm(256, 2_048, 401), 42),
        ],
        SuiteScale::Default => vec![
            weighted("rmat13-w", gen::rmat(gen::RmatParams::graph500(13, 8), 502), 51),
            weighted("er-8192-w", gen::gnm(8_192, 65_536, 501), 52),
        ],
        SuiteScale::Large => Vec::new(),
    }
}

/// Run the strategy gate at `scale` with `threads` workers: per graph, a
/// sequential `fused` normalization row plus one pooled row per
/// strategy, every one cross-checked against Dijkstra before timing.
pub fn run(scale: SuiteScale, threads: usize, reps: Reps) -> Vec<BenchEntry> {
    let pool = ThreadPool::with_threads(threads).expect("thread count validated by CLI");
    let sname = scale_name(scale);
    let mut entries = Vec::new();
    for d in gate_graphs(scale) {
        let g = &d.graph;
        let src = bench_source(g);
        let dj = dijkstra::dijkstra(g, src);

        let ms = |(med, min): (std::time::Duration, std::time::Duration)| {
            (med.as_secs_f64() * 1e3, min.as_secs_f64() * 1e3)
        };

        let fu = fused::delta_stepping_fused(g, src, DELTA);
        assert_eq!(fu.dist, dj.dist, "{}: fused disagrees with Dijkstra", d.name);
        let fused_t = ms(measure_median_min(
            || {
                std::hint::black_box(fused::delta_stepping_fused(g, src, DELTA));
            },
            reps,
        ));
        let stats_only = fused_t.1 < MIN_TIMED_MS;

        let entry = |impl_name: &str,
                     threads: usize,
                     (median_ms, min_ms): (f64, f64),
                     stats: sssp_core::stats::SsspStats| BenchEntry {
            scale: sname.to_string(),
            graph: d.name.clone(),
            nv: g.num_vertices(),
            ne: g.num_edges(),
            impl_name: impl_name.to_string(),
            threads,
            median_ms,
            min_ms,
            stats,
            stats_only,
            directions: None,
        };
        entries.push(entry("fused", 1, fused_t, fu.stats.clone()));

        let mut engine = SsspEngine::new(g);
        let mut relaxations = Vec::new();
        for (name, strategy) in strategies() {
            let (r, _) = engine
                .run_stepping(Some(&pool), src, DELTA, strategy, &mut RunBudget::unlimited())
                .expect("gate graphs are valid");
            assert_eq!(r.dist, dj.dist, "{}: {name} disagrees with Dijkstra", d.name);
            relaxations.push(r.stats.relaxations);
            let t = measure_median_min(
                || {
                    let (r, _) = engine
                        .run_stepping(
                            Some(&pool),
                            src,
                            DELTA,
                            strategy,
                            &mut RunBudget::unlimited(),
                        )
                        .expect("already ran once above");
                    std::hint::black_box(r);
                },
                reps,
            );
            entries.push(entry(name, threads, ms(t), r.stats.clone()));
        }
        // The headline claim, enforced where the baseline is born:
        // ρ-stepping must do strictly less relaxation work than classic
        // Δ = 1 on every weighted gate graph.
        assert!(
            relaxations[1] < relaxations[0],
            "{}: stepping-rho did {} relaxations, classic only {} — the strategy \
             stopped paying for itself",
            d.name,
            relaxations[1],
            relaxations[0],
        );
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Json, ToJson};

    #[test]
    fn smoke_gate_shows_the_rho_win_and_round_trips() {
        // run() itself asserts Dijkstra agreement and the relaxation
        // reduction; this test pins the document shape on top.
        let entries = run(SuiteScale::Smoke, 2, Reps { warmup: 0, samples: 1 });
        // 2 weighted gate graphs x (fused + 3 strategies).
        assert_eq!(entries.len(), 8);
        for chunk in entries.chunks(4) {
            assert_eq!(chunk[0].impl_name, "fused");
            assert_eq!(chunk[1].impl_name, "stepping-classic");
            assert_eq!(chunk[2].impl_name, "stepping-rho");
            assert_eq!(chunk[3].impl_name, "stepping-delta-star");
            // Classic through the strategy front door is still the
            // classic algorithm: its counters match fused exactly.
            assert_eq!(chunk[0].stats, chunk[1].stats, "{}", chunk[0].graph);
            assert!(
                chunk[2].stats.relaxations < chunk[1].stats.relaxations,
                "{}: rho {} vs classic {}",
                chunk[0].graph,
                chunk[2].stats.relaxations,
                chunk[1].stats.relaxations
            );
        }
        // Entries survive the JSON document round-trip with their
        // strategy names intact.
        let doc = super::super::baseline::to_document(&entries);
        let parsed = Json::parse(&doc.render()).unwrap();
        let names: Vec<String> = parsed
            .get("entries")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|e| e.get("impl").and_then(Json::as_str).map(str::to_string))
            .collect();
        assert!(names.iter().any(|n| n == "stepping-rho"));
        let _ = entries.to_json();
    }

    #[test]
    fn stepping_entries_join_the_stats_gate() {
        use super::super::baseline::check_against;
        let entries = run(SuiteScale::Smoke, 1, Reps { warmup: 0, samples: 1 });
        let doc = super::super::baseline::to_document(&entries);
        let parsed = Json::parse(&doc.render()).unwrap();
        // A fresh identical run passes...
        assert!(check_against(&parsed, &entries).passed());
        // ...and a counter drift on a strategy row is caught.
        let mut drifted = entries.clone();
        let row = drifted.iter_mut().find(|e| e.impl_name == "stepping-rho").unwrap();
        row.stats.relaxations += 1;
        let report = check_against(&parsed, &drifted);
        assert!(!report.passed());
        assert!(report.failures[0].contains("stepping-rho"));
    }
}
