//! ABL-OPS — Sec. VI-C: "the matrix filtering operations on `A_H` and
//! `A_L` were noted to consume 35-40 % of the run time of the sequential
//! implementation." This experiment reproduces that phase breakdown for
//! the fused implementation, per suite graph.

use graphdata::{paper_suite, SuiteScale};
use sssp_core::fused;

use crate::report::{Json, ToJson};
use crate::bench_source;

/// One graph's phase breakdown.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Dataset name.
    pub name: String,
    /// Vertex count.
    pub nv: usize,
    /// Time building `A_L`/`A_H`, milliseconds.
    pub matrix_filter_ms: f64,
    /// Time in `(min,+)` relaxation, milliseconds.
    pub relaxation_ms: f64,
    /// Time in vector filtering/bookkeeping, milliseconds.
    pub vector_ops_ms: f64,
    /// Matrix-filter share of accounted time (the paper's 0.35–0.40).
    pub filter_fraction: f64,
}

impl ToJson for ProfileRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("nv", self.nv.to_json()),
            ("matrix_filter_ms", self.matrix_filter_ms.to_json()),
            ("relaxation_ms", self.relaxation_ms.to_json()),
            ("vector_ops_ms", self.vector_ops_ms.to_json()),
            ("filter_fraction", self.filter_fraction.to_json()),
        ])
    }
}

/// Profile each suite graph (single run per graph; the phases are timed
/// inside the implementation).
pub fn run(scale: SuiteScale) -> Vec<ProfileRow> {
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            // Warm-up run, then the measured run.
            let _ = fused::delta_stepping_fused(g, src, 1.0);
            let (_, profile) = fused::delta_stepping_fused_profiled(g, src, 1.0);
            ProfileRow {
                name: d.name,
                nv: g.num_vertices(),
                matrix_filter_ms: profile.matrix_filter.as_secs_f64() * 1e3,
                relaxation_ms: profile.relaxation.as_secs_f64() * 1e3,
                vector_ops_ms: profile.vector_ops.as_secs_f64() * 1e3,
                filter_fraction: profile.matrix_filter_fraction(),
            }
        })
        .collect()
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[ProfileRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nv.to_string(),
                format!("{:.3}", r.matrix_filter_ms),
                format!("{:.3}", r.relaxation_ms),
                format!("{:.3}", r.vector_ops_ms),
                format!("{:.1}%", r.filter_fraction * 100.0),
            ]
        })
        .collect()
}

/// Header matching [`to_table`].
pub const HEADER: [&str; 6] = [
    "graph",
    "|V|",
    "filter_ms",
    "relax_ms",
    "vector_ms",
    "filter_share",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_fractions_in_unit_interval() {
        let rows = run(SuiteScale::Smoke);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.filter_fraction), "{}", r.name);
            let total = r.matrix_filter_ms + r.relaxation_ms + r.vector_ops_ms;
            assert!(total > 0.0);
        }
    }
}
