//! FIG3 — "On average a 3.7× improvement in performance is attained by our
//! sequential C implementation over SuiteSparse … by fusing operations."
//!
//! We time the unfused GraphBLAS implementation
//! ([`sssp_core::gblas_impl`], standing in for SuiteSparse) against the
//! fused direct implementation ([`sssp_core::fused`]) on the suite graphs
//! sorted by ascending node count, with Δ = 1 and unit weights — the
//! paper's exact setting.

use graphdata::{paper_suite, SuiteScale};
use sssp_core::{fused, gblas_impl};

use crate::experiments::geomean;
use crate::measure::{measure_min, Reps};
use crate::report::{Json, ToJson};
use crate::bench_source;

/// One bar pair of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Dataset name.
    pub name: String,
    /// Vertex count (the figure's secondary axis).
    pub nv: usize,
    /// Directed edge count.
    pub ne: usize,
    /// Unfused GraphBLAS time, milliseconds.
    pub unfused_ms: f64,
    /// Fused direct time, milliseconds.
    pub fused_ms: f64,
    /// `unfused / fused` — the figure's bar height.
    pub speedup: f64,
}

impl ToJson for Fig3Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("nv", self.nv.to_json()),
            ("ne", self.ne.to_json()),
            ("unfused_ms", self.unfused_ms.to_json()),
            ("fused_ms", self.fused_ms.to_json()),
            ("speedup", self.speedup.to_json()),
        ])
    }
}

/// Run the FIG3 experiment over the suite at `scale`.
pub fn run(scale: SuiteScale, reps: Reps) -> Vec<Fig3Row> {
    let delta = 1.0;
    paper_suite(scale)
        .into_iter()
        .map(|d| {
            let g = &d.graph;
            let src = bench_source(g);
            let a = g.to_adjacency();
            // Correctness cross-check before timing anything.
            let unfused = gblas_impl::sssp_delta_step(&a, delta, src);
            let fused_r = fused::delta_stepping_fused(g, src, delta);
            assert_eq!(
                unfused.dist, fused_r.dist,
                "{}: implementations disagree",
                d.name
            );

            let unfused_t = measure_min(
                || {
                    std::hint::black_box(gblas_impl::sssp_delta_step(&a, delta, src));
                },
                reps,
            );
            let fused_t = measure_min(
                || {
                    std::hint::black_box(fused::delta_stepping_fused(g, src, delta));
                },
                reps,
            );
            Fig3Row {
                name: d.name,
                nv: g.num_vertices(),
                ne: g.num_edges(),
                unfused_ms: unfused_t.as_secs_f64() * 1e3,
                fused_ms: fused_t.as_secs_f64() * 1e3,
                speedup: unfused_t.as_secs_f64() / fused_t.as_secs_f64(),
            }
        })
        .collect()
}

/// The figure's headline number: geometric-mean speedup across graphs.
pub fn average_speedup(rows: &[Fig3Row]) -> f64 {
    geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>())
}

/// Table rows for printing/CSV.
pub fn to_table(rows: &[Fig3Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nv.to_string(),
                r.ne.to_string(),
                format!("{:.3}", r.unfused_ms),
                format!("{:.3}", r.fused_ms),
                format!("{:.2}", r.speedup),
            ]
        })
        .collect()
}

/// The table header shared by the binary and EXPERIMENTS.md.
pub const HEADER: [&str; 6] = ["graph", "|V|", "|E|", "unfused_ms", "fused_ms", "speedup"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_fusion_speedup() {
        let rows = run(SuiteScale::Smoke, Reps { warmup: 0, samples: 1 });
        assert_eq!(rows.len(), 4);
        // Sorted by ascending |V| like the figure's x axis.
        for w in rows.windows(2) {
            assert!(w[0].nv <= w[1].nv);
        }
        // The fused implementation must win on every graph (the paper's
        // win is ~3.7x on average; we only assert direction here).
        for r in &rows {
            assert!(
                r.speedup > 1.0,
                "{}: fused ({:.3} ms) not faster than unfused ({:.3} ms)",
                r.name,
                r.fused_ms,
                r.unfused_ms
            );
        }
        assert!(average_speedup(&rows) > 1.0);
    }
}
