//! One module per experiment in the EXPERIMENTS.md index.

pub mod ablation_select;
pub mod baseline;
pub mod datasets;
pub mod delta_sweep;
pub mod fig3;
pub mod fig4;
pub mod phase_profile;
pub mod stepping;

use graphdata::SuiteScale;

/// Parse a `--scale` CLI value (`smoke` / `default` / `large`).
pub fn parse_scale(args: &[String]) -> SuiteScale {
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            return match pair[1].as_str() {
                "smoke" => SuiteScale::Smoke,
                "default" => SuiteScale::Default,
                "large" => SuiteScale::Large,
                other => panic!("unknown --scale '{other}' (smoke|default|large)"),
            };
        }
    }
    SuiteScale::Default
}

/// Geometric mean of a slice of positive ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_variants() {
        let args = |s: &str| vec!["--scale".to_string(), s.to_string()];
        assert_eq!(parse_scale(&args("smoke")), SuiteScale::Smoke);
        assert_eq!(parse_scale(&args("large")), SuiteScale::Large);
        assert_eq!(parse_scale(&[]), SuiteScale::Default);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.7]) - 3.7).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
