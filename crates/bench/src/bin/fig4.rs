//! Regenerate Fig. 4: task-parallel delta-stepping at 1/2/4 (and 8)
//! threads, normalized to the fused sequential implementation, plus the
//! improved-parallelism series (ABL-PARIMPROVED).
//!
//! By default the numbers come from the task-schedule simulation (see
//! `sssp_core::parallel_sim`), which is meaningful on any machine
//! including single-core containers. Pass `--wallclock` to time the real
//! threaded implementations instead (needs actual cores).
//!
//! Usage: `cargo run -p sssp-bench --release --bin fig4 [--scale smoke|default|large] [--wallclock]`

use sssp_bench::experiments::{fig4, parse_scale};
use sssp_bench::{markdown_table, write_csv, write_json, Reps};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let wallclock = args.iter().any(|a| a == "--wallclock");
    let reps = Reps::default();
    let threads = [1usize, 2, 4, 8];

    println!("FIG4: task-parallel speedup over fused sequential (delta = 1)");
    println!("paper reference: avg 1.44x at 2 threads, 1.5x at 4 threads (paper scheme)");
    if wallclock {
        println!("mode: wall-clock (real threaded implementations)\n");
    } else {
        println!("mode: task-schedule simulation (LPT makespan of the recorded task graph)\n");
    }

    let rows = if wallclock {
        fig4::run_wallclock(scale, &threads, reps)
    } else {
        fig4::run(scale, &threads, reps)
    };
    let header = fig4::header(&threads);
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let table = fig4::to_table(&rows);
    println!("{}", markdown_table(&header_refs, &table));
    for (k, &t) in threads.iter().enumerate() {
        println!(
            "geomean at {t} thread(s): paper-scheme {:.2}x, improved {:.2}x",
            fig4::average_parallel_speedup(&rows, k),
            fig4::average_improved_speedup(&rows, k)
        );
    }

    write_csv("results/fig4.csv", &header_refs, &table).expect("write csv");
    write_json("results/fig4.json", &rows).expect("write json");
    println!("\nwrote results/fig4.csv, results/fig4.json");
}
