//! Phase breakdown of the fused implementation (Sec. VI-C's 35–40 %
//! matrix-filter claim).
//!
//! Usage: `cargo run -p sssp-bench --release --bin phase_profile [--scale smoke|default|large]`

use sssp_bench::experiments::{parse_scale, phase_profile};
use sssp_bench::{markdown_table, write_csv, write_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    println!("ABL-OPS: per-phase time of the fused implementation (delta = 1)");
    println!("paper reference: matrix filtering takes 35-40% of sequential runtime\n");
    let rows = phase_profile::run(scale);
    let table = phase_profile::to_table(&rows);
    println!("{}", markdown_table(&phase_profile::HEADER, &table));

    write_csv("results/phase_profile.csv", &phase_profile::HEADER, &table).expect("write csv");
    write_json("results/phase_profile.json", &rows).expect("write json");
    println!("wrote results/phase_profile.csv, results/phase_profile.json");
}
