//! Regenerate Fig. 3: fused direct implementation vs unfused GraphBLAS,
//! per graph, sorted by ascending node count.
//!
//! Usage: `cargo run -p sssp-bench --release --bin fig3 [--scale smoke|default|large]`

use sssp_bench::experiments::{fig3, parse_scale};
use sssp_bench::{markdown_table, write_csv, write_json, Reps};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let reps = Reps::default();

    println!("FIG3: fused direct vs unfused GraphBLAS (delta = 1, unit weights)");
    println!("paper reference: ~3.7x average improvement from fusion\n");

    let rows = fig3::run(scale, reps);
    let table = fig3::to_table(&rows);
    println!("{}", markdown_table(&fig3::HEADER, &table));
    println!(
        "geometric-mean speedup (fused over unfused): {:.2}x",
        fig3::average_speedup(&rows)
    );

    write_csv("results/fig3.csv", &fig3::HEADER, &table).expect("write csv");
    write_json("results/fig3.json", &rows).expect("write json");
    println!("\nwrote results/fig3.csv, results/fig3.json");
}
