//! ABL-SELECT: decompose the Fig. 3 fusion speedup into "better library"
//! (single-pass select filters) vs "user-side fusion".
//!
//! Usage: `cargo run -p sssp-bench --release --bin ablation [--scale smoke|default|large]`

use sssp_bench::experiments::{ablation_select, parse_scale};
use sssp_bench::{markdown_table, write_csv, write_json, Reps};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    println!("ABL-SELECT: two-apply GraphBLAS vs select-based GraphBLAS vs fused direct");
    println!("(how much of Fig. 3's fusion win a better library already captures)\n");
    let rows = ablation_select::run(scale, Reps::default());
    let table = ablation_select::to_table(&rows);
    println!("{}", markdown_table(&ablation_select::HEADER, &table));
    println!(
        "geomean: select-based library {:.2}x, full fusion {:.2}x",
        ablation_select::average_select_speedup(&rows),
        ablation_select::average_fused_speedup(&rows)
    );

    write_csv("results/ablation_select.csv", &ablation_select::HEADER, &table).expect("csv");
    write_json("results/ablation_select.json", &rows).expect("json");
    println!("\nwrote results/ablation_select.csv, results/ablation_select.json");
}
