//! Print the benchmark dataset inventory (the Sec. VI-A setup table).
//!
//! Usage: `cargo run -p sssp-bench --release --bin datasets [--scale smoke|default|large]`

use sssp_bench::experiments::{datasets, parse_scale};
use sssp_bench::{markdown_table, write_csv, write_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);

    println!("TAB-SETUP: benchmark suite (symmetric, unit weights, ascending |V|)\n");
    let rows = datasets::run(scale);
    let table = datasets::to_table(&rows);
    println!("{}", markdown_table(&datasets::HEADER, &table));

    write_csv("results/datasets.csv", &datasets::HEADER, &table).expect("write csv");
    write_json("results/datasets.json", &rows).expect("write json");
    println!("wrote results/datasets.csv, results/datasets.json");
}
