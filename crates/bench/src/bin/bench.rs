//! Perf-regression harness: run the fig3/fig4 workloads (plus the
//! bench-only road graphs) across the fused, prior-atomic, forced-push,
//! and direction-optimized request-buffer implementations, emit
//! `BENCH_sssp.json`, and optionally diff against a committed baseline.
//!
//! Usage:
//!   cargo run -p sssp-bench --release --bin bench -- [FLAGS]
//!
//! Flags:
//!   --smoke             run only the smoke-scale suite (CI mode; the
//!                       default runs smoke + default scales so the
//!                       emitted baseline covers both)
//!   --threads N         worker threads for the parallel entries (default 4)
//!   --out PATH          where to write the JSON document (default
//!                       BENCH_sssp.json; suppressed in --check mode
//!                       unless given explicitly)
//!   --check PATH        compare this run against a committed baseline;
//!                       exits non-zero if any entry's ratio-vs-fused
//!                       regresses by more than 25%
//!   --refresh-results   also regenerate the results/*.csv and
//!                       results/*.json files for every experiment at the
//!                       scale in effect, so they can't go stale

use graphdata::SuiteScale;
use sssp_bench::experiments::{
    ablation_select, baseline, datasets, delta_sweep, fig3, fig4, phase_profile, stepping,
};
use sssp_bench::{markdown_table, write_csv, write_json, Reps};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.windows(2)
        .find(|pair| pair[0] == name)
        .map(|pair| pair[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = flag_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads expects a positive integer"))
        .unwrap_or(4);
    assert!(threads > 0, "--threads expects a positive integer");
    let check_path = flag_value(&args, "--check");
    let out_path = flag_value(&args, "--out");
    let refresh = args.iter().any(|a| a == "--refresh-results");

    let scales: &[SuiteScale] = if smoke {
        &[SuiteScale::Smoke]
    } else {
        &[SuiteScale::Smoke, SuiteScale::Default]
    };
    println!(
        "BENCH: fused vs improved-atomic vs improved-push vs improved \
         (delta = 1, unit weights)"
    );
    println!("threads: {threads}, scales: {}\n", if smoke { "smoke" } else { "smoke+default" });

    let mut entries = Vec::new();
    for &scale in scales {
        // Smoke graphs finish in microseconds, so medians there need many
        // more samples to be stable enough for the 25% regression check.
        let reps = match scale {
            SuiteScale::Smoke => Reps { warmup: 3, samples: 15 },
            _ => Reps { warmup: 1, samples: 3 },
        };
        entries.extend(baseline::run(scale, threads, reps));
    }
    let table = baseline::to_table(&entries);
    println!("{}", markdown_table(&baseline::HEADER, &table));

    // Headline: per-graph speedup of the request-buffer path over the
    // prior atomic scheme, and of the direction oracle over forced push,
    // at the same thread count (minima: stable on shared machines, see
    // the check's doc).
    for chunk in entries.chunks(4) {
        let (atomic, push, improved) = (&chunk[1], &chunk[2], &chunk[3]);
        if improved.min_ms > 0.0 {
            println!(
                "{}/{}: improved vs improved-atomic {:.2}x",
                atomic.scale,
                atomic.graph,
                atomic.min_ms / improved.min_ms
            );
            let (push_epochs, pull_epochs) = improved.directions.unwrap_or((0, 0));
            println!(
                "{}/{}: direction oracle vs forced push {:.2}x ({} push / {} pull epochs)",
                push.scale,
                push.graph,
                push.min_ms / improved.min_ms,
                push_epochs,
                pull_epochs
            );
        }
    }

    // Generalized-stepping strategy gate: real-weighted rmat/er graphs,
    // one row per strategy. Grouped after the baseline headline so the
    // chunks(4) walk above only ever sees baseline rows.
    println!(
        "\nSTEPPING: fused vs classic vs rho:{} vs delta-star:{} (delta = {}, real weights)",
        stepping::RHO,
        stepping::DELTA_STAR_FACTOR,
        stepping::DELTA,
    );
    let mut stepping_entries = Vec::new();
    for &scale in scales {
        let reps = match scale {
            SuiteScale::Smoke => Reps { warmup: 3, samples: 15 },
            _ => Reps { warmup: 1, samples: 3 },
        };
        stepping_entries.extend(stepping::run(scale, threads, reps));
    }
    let table = baseline::to_table(&stepping_entries);
    println!("{}", markdown_table(&baseline::HEADER, &table));
    for chunk in stepping_entries.chunks(4) {
        let (classic, rho) = (&chunk[1], &chunk[2]);
        println!(
            "{}/{}: rho-stepping does {:.2}x the relaxations of classic delta=1{}",
            rho.scale,
            rho.graph,
            rho.stats.relaxations as f64 / classic.stats.relaxations as f64,
            if rho.min_ms > 0.0 && classic.min_ms > 0.0 {
                format!(" at {:.2}x the time", rho.min_ms / classic.min_ms)
            } else {
                String::new()
            },
        );
    }
    entries.extend(stepping_entries);

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let doc = sssp_bench::report::Json::parse(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let report = baseline::check_against(&doc, &entries);
        if report.passed() {
            println!(
                "\ncheck against {path}: OK ({} timing datapoint(s) within {:.0}%, \
                 {} sub-{}ms datapoint(s) stats-checked only)",
                report.timed,
                baseline::TOLERANCE * 100.0,
                report.skipped,
                baseline::MIN_TIMED_MS,
            );
        } else {
            println!("\ncheck against {path}: FAILED");
            for f in &report.failures {
                println!("  regression: {f}");
            }
            std::process::exit(1);
        }
    }

    // In check mode only write when asked to; otherwise refresh the
    // default baseline file.
    let write_target = match (&out_path, &check_path) {
        (Some(p), _) => Some(p.clone()),
        (None, None) => Some("BENCH_sssp.json".to_string()),
        (None, Some(_)) => None,
    };
    if let Some(path) = write_target {
        let doc = baseline::to_document(&entries);
        std::fs::write(&path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }

    if refresh {
        let scale = if smoke { SuiteScale::Smoke } else { SuiteScale::Default };
        refresh_results(scale);
    }
}

/// Regenerate every committed `results/` artifact (what the standalone
/// experiment binaries write), so the files track the current code.
fn refresh_results(scale: SuiteScale) {
    let reps = Reps::default();
    println!("\nrefreshing results/ at {scale:?} scale...");

    let rows = fig3::run(scale, reps);
    write_csv("results/fig3.csv", &fig3::HEADER, &fig3::to_table(&rows)).expect("write csv");
    write_json("results/fig3.json", &rows).expect("write json");
    println!("  results/fig3.{{csv,json}}");

    let threads = [1usize, 2, 4, 8];
    let rows = fig4::run(scale, &threads, reps);
    let header = fig4::header(&threads);
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    write_csv("results/fig4.csv", &header_refs, &fig4::to_table(&rows)).expect("write csv");
    write_json("results/fig4.json", &rows).expect("write json");
    println!("  results/fig4.{{csv,json}}");

    let rows = datasets::run(scale);
    write_csv("results/datasets.csv", &datasets::HEADER, &datasets::to_table(&rows))
        .expect("write csv");
    write_json("results/datasets.json", &rows).expect("write json");
    println!("  results/datasets.{{csv,json}}");

    let rows = ablation_select::run(scale, reps);
    write_csv(
        "results/ablation_select.csv",
        &ablation_select::HEADER,
        &ablation_select::to_table(&rows),
    )
    .expect("write csv");
    write_json("results/ablation_select.json", &rows).expect("write json");
    println!("  results/ablation_select.{{csv,json}}");

    let deltas = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];
    let rows = delta_sweep::run(scale, &deltas, reps);
    write_csv("results/delta_sweep.csv", &delta_sweep::HEADER, &delta_sweep::to_table(&rows))
        .expect("write csv");
    write_json("results/delta_sweep.json", &rows).expect("write json");
    println!("  results/delta_sweep.{{csv,json}}");

    let rows = phase_profile::run(scale);
    write_csv(
        "results/phase_profile.csv",
        &phase_profile::HEADER,
        &phase_profile::to_table(&rows),
    )
    .expect("write csv");
    write_json("results/phase_profile.json", &rows).expect("write json");
    println!("  results/phase_profile.{{csv,json}}");
}
