//! Δ-sweep ablation (Sec. VII): how bucket width trades phase count
//! against re-relaxation on weighted graphs.
//!
//! Usage: `cargo run -p sssp-bench --release --bin delta_sweep [--scale smoke|default|large]`

use sssp_bench::experiments::{delta_sweep, parse_scale};
use sssp_bench::{markdown_table, write_csv, write_json, Reps};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    let deltas = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];

    println!("ABL-DELTA: fused delta-stepping across bucket widths (weighted suite)\n");
    let rows = delta_sweep::run(scale, &deltas, Reps::default());
    let table = delta_sweep::to_table(&rows);
    println!("{}", markdown_table(&delta_sweep::HEADER, &table));

    write_csv("results/delta_sweep.csv", &delta_sweep::HEADER, &table).expect("write csv");
    write_json("results/delta_sweep.json", &rows).expect("write json");
    println!("wrote results/delta_sweep.csv, results/delta_sweep.json");
}
