//! # sssp-bench — the harness that regenerates every figure in the paper
//!
//! Each experiment lives in [`experiments`] and is driven both by a binary
//! (`fig3`, `fig4`, `datasets`, `delta_sweep`, `phase_profile`) that prints
//! the paper-style table and writes machine-readable results, and by a
//! Criterion bench for statistically careful timing.
//!
//! | experiment | paper artifact | binary |
//! |---|---|---|
//! | [`experiments::fig3`] | Fig. 3: fused vs unfused, avg ≈ 3.7× | `cargo run -p sssp-bench --release --bin fig3` |
//! | [`experiments::fig4`] | Fig. 4: task-parallel speedup at 2/4 threads | `--bin fig4` |
//! | [`experiments::datasets`] | Sec. VI-A dataset inventory | `--bin datasets` |
//! | [`experiments::delta_sweep`] | Sec. VII Δ discussion | `--bin delta_sweep` |
//! | [`experiments::phase_profile`] | Sec. VI-C 35–40 % filter-time claim | `--bin phase_profile` |

pub mod experiments;
pub mod measure;
pub mod report;

pub use measure::{measure_median, measure_min, Reps};
pub use report::{markdown_table, write_json, write_csv};

use graphdata::CsrGraph;

/// Deterministic benchmark source: the vertex with the largest out-degree
/// (guaranteed to reach a large component on every suite graph).
pub fn bench_source(g: &CsrGraph) -> usize {
    (0..g.num_vertices())
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::gen::star;

    #[test]
    fn bench_source_picks_hub() {
        let g = CsrGraph::from_edge_list(&star(10)).unwrap();
        assert_eq!(bench_source(&g), 0);
    }
}
