//! Result reporting: aligned console/markdown tables plus CSV and JSON
//! files under `results/`.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Render rows as a GitHub-flavoured markdown table (also readable on a
/// terminal). `header` and every row must have the same arity.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Serialize `records` as pretty JSON into `path`, creating parent
/// directories.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, records: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(records)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Write a CSV file (header + string rows), creating parent directories.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = markdown_table(
            &["name", "n"],
            &[
                vec!["grid".into(), "1024".into()],
                vec!["rmat-13".into(), "8192".into()],
            ],
        );
        assert!(t.contains("| grid    | 1024 |"));
        assert!(t.contains("| rmat-13 | 8192 |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_and_json_round_trip() {
        let dir = std::env::temp_dir().join(format!("ssspbench-{}", std::process::id()));
        let csv = dir.join("t.csv");
        write_csv(&csv, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let json = dir.join("t.json");
        write_json(&json, &vec![("x", 1)]).unwrap();
        assert!(std::fs::read_to_string(&json).unwrap().contains("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
