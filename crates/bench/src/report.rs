//! Result reporting: aligned console/markdown tables plus CSV and JSON
//! files under `results/`.
//!
//! JSON output is hand-rolled (no external serializer): record types
//! implement [`ToJson`] by building a [`Json`] tree, which renders as
//! pretty-printed standards-compliant JSON (non-finite floats become
//! `null`).

use std::io::Write;
use std::path::Path;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (`null` if not finite).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Render as pretty-printed JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }
}

/// Conversion into a [`Json`] tree, implemented by every record type that
/// [`write_json`] accepts.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

impl_to_json_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_int!(isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Render rows as a GitHub-flavoured markdown table (also readable on a
/// terminal). `header` and every row must have the same arity.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Serialize `records` as pretty JSON into `path`, creating parent
/// directories.
pub fn write_json<T: ToJson + ?Sized>(path: impl AsRef<Path>, records: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, records.to_json().render())
}

/// Write a CSV file (header + string rows), creating parent directories.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = markdown_table(
            &["name", "n"],
            &[
                vec!["grid".into(), "1024".into()],
                vec!["rmat-13".into(), "8192".into()],
            ],
        );
        assert!(t.contains("| grid    | 1024 |"));
        assert!(t.contains("| rmat-13 | 8192 |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_and_json_round_trip() {
        let dir = std::env::temp_dir().join(format!("ssspbench-{}", std::process::id()));
        let csv = dir.join("t.csv");
        write_csv(&csv, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let json = dir.join("t.json");
        write_json(&json, &vec![("x", 1)]).unwrap();
        assert!(std::fs::read_to_string(&json).unwrap().contains("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\n".into())),
            ("n", Json::Float(1.5)),
            ("bad", Json::Float(f64::NAN)),
            ("v", Json::Arr(vec![Json::UInt(1), Json::Int(-2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = j.render();
        assert!(text.contains("\"a\\\"b\\\\c\\n\""));
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("1.5"));
    }
}
