//! Result reporting: aligned console/markdown tables plus CSV and JSON
//! files under `results/`.
//!
//! JSON handling is hand-rolled (no external serializer): record types
//! implement [`ToJson`] by building a [`Json`] tree, which renders as
//! pretty-printed standards-compliant JSON (non-finite floats become
//! `null`); [`Json::parse`] reads it back, so the bench regression check
//! can diff a fresh run against the committed `BENCH_sssp.json`.

use std::io::Write;
use std::path::Path;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (`null` if not finite).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Render as pretty-printed JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    /// Parse JSON text into a [`Json`] tree. Accepts everything
    /// [`Json::render`] emits (and standard JSON generally); numbers with
    /// a fraction or exponent become [`Json::Float`], negative integers
    /// [`Json::Int`], the rest [`Json::UInt`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any of the three number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON reader over raw bytes (all structural
/// characters are ASCII; string payloads are re-validated as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' but found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // renderer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!("loop stops only on quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number '{text}'"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

/// Conversion into a [`Json`] tree, implemented by every record type that
/// [`write_json`] accepts.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

impl_to_json_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_int!(isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Render rows as a GitHub-flavoured markdown table (also readable on a
/// terminal). `header` and every row must have the same arity.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Serialize `records` as pretty JSON into `path`, creating parent
/// directories.
pub fn write_json<T: ToJson + ?Sized>(path: impl AsRef<Path>, records: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, records.to_json().render())
}

/// Write a CSV file (header + string rows), creating parent directories.
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = markdown_table(
            &["name", "n"],
            &[
                vec!["grid".into(), "1024".into()],
                vec!["rmat-13".into(), "8192".into()],
            ],
        );
        assert!(t.contains("| grid    | 1024 |"));
        assert!(t.contains("| rmat-13 | 8192 |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_and_json_round_trip() {
        let dir = std::env::temp_dir().join(format!("ssspbench-{}", std::process::id()));
        let csv = dir.join("t.csv");
        write_csv(&csv, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let json = dir.join("t.json");
        write_json(&json, &vec![("x", 1)]).unwrap();
        assert!(std::fs::read_to_string(&json).unwrap().contains("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\n".into())),
            ("n", Json::Float(1.5)),
            ("bad", Json::Float(f64::NAN)),
            ("v", Json::Arr(vec![Json::UInt(1), Json::Int(-2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = j.render();
        assert!(text.contains("\"a\\\"b\\\\c\\n\""));
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\te".into())),
            ("f", Json::Float(1.5)),
            ("u", Json::UInt(42)),
            ("i", Json::Int(-7)),
            ("t", Json::Bool(true)),
            ("nil", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::UInt(1), Json::Obj(vec![("k".into(), Json::Float(0.25))])]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_numbers_and_accessors() {
        let j = Json::parse(r#"{"a": 1e3, "b": -2.5, "c": 10, "d": -3, "s": "hi"}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(j.get("b"), Some(&Json::Float(-2.5)));
        assert_eq!(j.get("c"), Some(&Json::UInt(10)));
        assert_eq!(j.get("c").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("d"), Some(&Json::Int(-3)));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_unicode_escapes() {
        let raw = Json::parse(r#""café""#).unwrap();
        assert_eq!(raw.as_str(), Some("café"));
        let escaped = Json::parse(r#""caf\u00e9""#).unwrap();
        assert_eq!(escaped.as_str(), Some("café"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"k\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
