//! Property tests for the translation gallery: on random symmetric simple
//! graphs, every canonical algorithm must agree with its linear-algebraic
//! twin, and cross-algorithm invariants must hold.

use proptest::prelude::*;

use graph_algos::{bfs, components, ktruss, triangles};
use graphdata::{CsrGraph, EdgeList};

/// Random symmetric simple graph with `n` vertices.
fn arb_sym_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            let mut el = EdgeList::new(n);
            for (u, v) in pairs {
                if u != v {
                    el.push(u, v, 1.0);
                    el.push(v, u, 1.0);
                }
            }
            el.ensure_vertices(n);
            CsrGraph::from_edge_list(&el).expect("valid by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_forms_agree(g in arb_sym_graph(30, 100), src_raw in 0usize..30) {
        let src = src_raw % g.num_vertices();
        let a = bfs::bool_adjacency(&g);
        prop_assert_eq!(
            bfs::bfs_levels_canonical(&g, src),
            bfs::bfs_levels_gblas(&a, src)
        );
        prop_assert_eq!(
            bfs::bfs_parents_canonical(&g, src),
            bfs::bfs_parents_gblas(&a, src)
        );
    }

    #[test]
    fn bfs_levels_consistent_with_parents(g in arb_sym_graph(25, 80)) {
        let a = bfs::bool_adjacency(&g);
        let levels = bfs::bfs_levels_gblas(&a, 0);
        let parents = bfs::bfs_parents_gblas(&a, 0);
        for v in 0..g.num_vertices() {
            match (levels[v], parents[v]) {
                (Some(0), Some(p)) => prop_assert_eq!(p, v), // source
                (Some(l), Some(p)) => prop_assert_eq!(levels[p], Some(l - 1)),
                (None, None) => {}
                other => prop_assert!(false, "inconsistent {:?} at {}", other, v),
            }
        }
    }

    #[test]
    fn components_forms_agree_and_respect_bfs(g in arb_sym_graph(30, 90)) {
        let a = bfs::bool_adjacency(&g);
        let canonical = components::components_canonical(&g);
        let algebraic = components::components_gblas(&a);
        prop_assert_eq!(&canonical, &algebraic);
        // Same component <=> mutually BFS-reachable (symmetric graph).
        let reach0 = bfs::bfs_levels_canonical(&g, 0);
        for v in 0..g.num_vertices() {
            prop_assert_eq!(
                canonical[v] == canonical[0],
                reach0[v].is_some(),
                "vertex {}", v
            );
        }
        // Labels are component minima: label[v] <= v and label[label[v]] == label[v].
        for v in 0..g.num_vertices() {
            prop_assert!(canonical[v] <= v);
            prop_assert_eq!(canonical[canonical[v]], canonical[v]);
        }
    }

    #[test]
    fn triangle_forms_agree(g in arb_sym_graph(25, 120)) {
        let a = bfs::bool_adjacency(&g);
        prop_assert_eq!(triangles::triangles_canonical(&g), triangles::triangles_gblas(&a));
    }

    #[test]
    fn ktruss_forms_agree_and_nest(g in arb_sym_graph(20, 80)) {
        let a = bfs::bool_adjacency(&g);
        let mut prev: Option<Vec<(usize, usize)>> = None;
        for k in [2usize, 3, 4, 5] {
            let canonical = ktruss::ktruss_canonical(&g, k);
            let algebraic = ktruss::ktruss_gblas(&a, k);
            prop_assert_eq!(&canonical, &algebraic, "k = {}", k);
            // Trusses are nested: the (k+1)-truss is a subset of the k-truss.
            if let Some(prev_edges) = &prev {
                for e in &canonical {
                    prop_assert!(prev_edges.contains(e), "{:?} not in {}-truss", e, k - 1);
                }
            }
            prev = Some(canonical);
        }
    }

    #[test]
    fn triangle_count_bounds_truss_content(g in arb_sym_graph(18, 60)) {
        // If there are no triangles, the 3-truss must be empty.
        let a = bfs::bool_adjacency(&g);
        if triangles::triangles_gblas(&a) == 0 {
            prop_assert!(ktruss::ktruss_gblas(&a, 3).is_empty());
        }
    }
}
