//! Triangle counting on undirected simple graphs.
//!
//! Canonical (edge-centric) form: for every edge `(u, v)` with `u < v`,
//! count the common neighbors `w < u` by sorted-list intersection.
//! Algebraic form (Sec. II-C's masked-SpGEMM pattern):
//! `C⟨L⟩ = L ⊕.pair Lᵀ` over the strictly-lower triangle `L`, then
//! `triangles = reduce(C)` — the mask removes the fill-in the paper warns
//! about.

use gblas::ops::{self, semiring};
use gblas::{Descriptor, Matrix};
use graphdata::CsrGraph;

/// Canonical edge-centric triangle count. `g` must be symmetric and
/// simple.
pub fn triangles_canonical(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for v in 0..g.num_vertices() {
        let (nv, _) = g.neighbors(v);
        for &u in nv {
            if u >= v {
                break; // neighbors sorted: only u < v
            }
            // Common neighbors w with w < u < v close a triangle once.
            let (nu, _) = g.neighbors(u);
            count += sorted_intersection_below(nu, nv, u);
        }
    }
    count
}

/// |{w ∈ a ∩ b : w < limit}| for sorted slices.
fn sorted_intersection_below(a: &[usize], b: &[usize], limit: usize) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x >= limit || y >= limit {
            break;
        }
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Algebraic triangle count: `C⟨L-structure⟩ = L ⊕.pair Lᵀ;
/// reduce(C, +)`. The strictly-lower mask makes every triangle count
/// exactly once.
pub fn triangles_gblas(a: &Matrix<bool>) -> u64 {
    assert_eq!(a.nrows(), a.ncols(), "adjacency must be square");
    let n = a.nrows();
    // L = strictly lower triangle of A.
    let mut l: Matrix<bool> = Matrix::new(n, n);
    ops::matrix_select_indexop(
        &mut l,
        None,
        None,
        &ops::FnIndexUnary::new(|_: bool, r: usize, c: usize| c < r),
        a,
        Descriptor::new(),
    )
    .expect("same dims");
    // C<L> = L ⊕.pair L^T : C[i,j] = |{k : L[i,k] ∧ L[j,k]}| on L's pattern.
    let mut c: Matrix<u64> = Matrix::new(n, n);
    ops::mxm(
        &mut c,
        Some(&l.structure()),
        None,
        &semiring::plus_pair::<bool, u64>(),
        &l,
        &l,
        Descriptor::replace().with_transpose_b(),
    )
    .expect("dims agree");
    ops::reduce_matrix(&ops::monoid::plus::<u64>(), &c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bool_adjacency;
    use graphdata::gen::{complete, cycle, grid2d};
    use graphdata::{CsrGraph, EdgeList};

    fn csr(el: EdgeList) -> CsrGraph {
        let mut el = el;
        el.symmetrize();
        el.dedup_min();
        CsrGraph::from_edge_list(&el).unwrap()
    }

    #[test]
    fn triangle_graph_has_one() {
        let g = csr(EdgeList::from_triples(vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
        ]));
        assert_eq!(triangles_canonical(&g), 1);
        assert_eq!(triangles_gblas(&bool_adjacency(&g)), 1);
    }

    #[test]
    fn complete_graph_count() {
        // K_n has C(n,3) triangles.
        for n in [4usize, 5, 6] {
            let g = CsrGraph::from_edge_list(&complete(n)).unwrap();
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(triangles_canonical(&g), expect, "K_{n}");
            assert_eq!(triangles_gblas(&bool_adjacency(&g)), expect, "K_{n}");
        }
    }

    #[test]
    fn triangle_free_graphs() {
        let grid = CsrGraph::from_edge_list(&grid2d(4, 4)).unwrap();
        assert_eq!(triangles_canonical(&grid), 0);
        assert_eq!(triangles_gblas(&bool_adjacency(&grid)), 0);
        let c = csr(cycle(6));
        assert_eq!(triangles_canonical(&c), 0);
        assert_eq!(triangles_gblas(&bool_adjacency(&c)), 0);
    }

    #[test]
    fn two_sharing_an_edge() {
        // 0-1-2-0 and 1-2-3-1: two triangles sharing edge (1,2).
        let g = csr(EdgeList::from_triples(vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
        ]));
        assert_eq!(triangles_canonical(&g), 2);
        assert_eq!(triangles_gblas(&bool_adjacency(&g)), 2);
    }

    #[test]
    fn random_graphs_agree() {
        for seed in [1u64, 7, 42] {
            let mut el = graphdata::gen::gnm(40, 200, seed);
            el.symmetrize();
            el.dedup_min();
            let g = CsrGraph::from_edge_list(&el).unwrap();
            assert_eq!(
                triangles_canonical(&g),
                triangles_gblas(&bool_adjacency(&g)),
                "seed {seed}"
            );
        }
    }
}
