//! k-truss: the maximal subgraph in which every edge participates in at
//! least `k − 2` triangles. This is the paper's own Sec. II-C example of
//! an edge-centric computation whose algebraic form needs the Hadamard
//! product to remove SpGEMM fill-in: `S = (AᵀA) ∘ A`.
//!
//! Canonical (edge-centric) form: compute per-edge support by adjacency
//! intersection; repeatedly delete under-supported edges. Algebraic form:
//! `S⟨A⟩ = Aᵀ ⊕.pair A` (mask = Hadamard), select `S ≥ k − 2`, rebuild,
//! repeat until the edge set is stable.

use std::collections::BTreeSet;

use gblas::ops::{self, semiring};
use gblas::{Descriptor, Matrix};
use graphdata::CsrGraph;

/// Canonical edge-centric k-truss on a symmetric simple graph. Returns the
/// surviving undirected edge set as sorted `(u, v)` pairs with `u < v`.
pub fn ktruss_canonical(g: &CsrGraph, k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 2, "k-truss needs k >= 2");
    let min_support = k - 2;
    // Adjacency as BTreeSets for easy deletion + intersection.
    let mut adj: Vec<BTreeSet<usize>> = (0..g.num_vertices())
        .map(|v| g.neighbors(v).0.iter().copied().collect())
        .collect();
    loop {
        let mut doomed: Vec<(usize, usize)> = Vec::new();
        for u in 0..adj.len() {
            for &v in adj[u].iter().filter(|&&v| v > u) {
                let support = adj[u].intersection(&adj[v]).count();
                if support < min_support {
                    doomed.push((u, v));
                }
            }
        }
        if doomed.is_empty() {
            break;
        }
        for (u, v) in doomed {
            adj[u].remove(&v);
            adj[v].remove(&u);
        }
    }
    let mut edges = Vec::new();
    for (u, set) in adj.iter().enumerate() {
        for &v in set.iter().filter(|&&v| v > u) {
            edges.push((u, v));
        }
    }
    edges
}

/// Algebraic k-truss: iterate `S⟨A-structure⟩ = Aᵀ ⊕.pair A`, keep edges
/// with `S ≥ k − 2`. Returns the surviving edges like
/// [`ktruss_canonical`].
pub fn ktruss_gblas(a0: &Matrix<bool>, k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 2, "k-truss needs k >= 2");
    assert_eq!(a0.nrows(), a0.ncols(), "adjacency must be square");
    let n = a0.nrows();
    let min_support = (k - 2) as u64;
    if min_support == 0 {
        // Every edge trivially qualifies; note that S would *omit*
        // zero-support edges (plus_pair over an empty set stores nothing),
        // so the generic loop below must not run for k = 2.
        return a0
            .iter()
            .filter(|&(r, c, _)| r < c)
            .map(|(r, c, _)| (r, c))
            .collect();
    }
    let mut a = a0.clone();
    loop {
        // S<A> = A^T (+.pair) A : S[i,j] = common neighbors of i and j,
        // restricted to A's pattern (the Hadamard of Sec. II-C).
        let mut s: Matrix<u64> = Matrix::new(n, n);
        ops::mxm(
            &mut s,
            Some(&a.structure()),
            None,
            &semiring::plus_pair::<bool, u64>(),
            &a,
            &a,
            Descriptor::replace().with_transpose_a(),
        )
        .expect("dims agree");
        // Keep supported edges.
        let mut kept: Matrix<u64> = Matrix::new(n, n);
        ops::select_matrix(
            &mut kept,
            None,
            None,
            |_, _, sup| sup >= min_support,
            &s,
            Descriptor::new(),
        )
        .expect("same dims");
        if kept.nvals() == a.nvals() {
            break;
        }
        // Rebuild the boolean adjacency from the survivors.
        let mut next: Matrix<bool> = Matrix::new(n, n);
        ops::matrix_apply(
            &mut next,
            None,
            None,
            &ops::FnUnary::new(|_: u64| true),
            &kept,
            Descriptor::new(),
        )
        .expect("same dims");
        a = next;
    }
    a.iter()
        .filter(|&(r, c, _)| r < c)
        .map(|(r, c, _)| (r, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bool_adjacency;
    use graphdata::gen::complete;
    use graphdata::{CsrGraph, EdgeList};

    fn csr(triples: Vec<(usize, usize, f64)>) -> CsrGraph {
        let mut el = EdgeList::from_triples(triples);
        el.symmetrize();
        el.dedup_min();
        CsrGraph::from_edge_list(&el).unwrap()
    }

    #[test]
    fn complete_graph_survives_its_truss() {
        // K_5 is a 5-truss (every edge in 3 triangles).
        let g = CsrGraph::from_edge_list(&complete(5)).unwrap();
        let canonical = ktruss_canonical(&g, 5);
        assert_eq!(canonical.len(), 10);
        assert_eq!(ktruss_gblas(&bool_adjacency(&g), 5), canonical);
        // And vanishes at k = 6.
        assert!(ktruss_canonical(&g, 6).is_empty());
        assert!(ktruss_gblas(&bool_adjacency(&g), 6).is_empty());
    }

    #[test]
    fn pendant_edges_pruned_at_k3() {
        // A triangle with a tail: 0-1-2 triangle, 2-3 tail.
        let g = csr(vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]);
        let canonical = ktruss_canonical(&g, 3);
        assert_eq!(canonical, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(ktruss_gblas(&bool_adjacency(&g), 3), canonical);
    }

    #[test]
    fn cascade_deletion() {
        // Two triangles sharing an edge, plus a bridge making a chain:
        // removing weak edges can cascade.
        let g = csr(vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (2, 4, 1.0),
            (4, 5, 1.0),
        ]);
        let canonical = ktruss_canonical(&g, 3);
        let algebraic = ktruss_gblas(&bool_adjacency(&g), 3);
        assert_eq!(canonical, algebraic);
        // Both triangles survive, the pendant 4-5 edge does not.
        assert!(canonical.contains(&(0, 1)));
        assert!(canonical.contains(&(2, 4)));
        assert!(!canonical.contains(&(4, 5)));
    }

    #[test]
    fn k2_keeps_everything() {
        let g = csr(vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let canonical = ktruss_canonical(&g, 2);
        assert_eq!(canonical, vec![(0, 1), (1, 2)]);
        assert_eq!(ktruss_gblas(&bool_adjacency(&g), 2), canonical);
    }

    #[test]
    fn random_graphs_agree() {
        for seed in [3u64, 11, 29] {
            let mut el = graphdata::gen::gnm(25, 120, seed);
            el.symmetrize();
            el.dedup_min();
            let g = CsrGraph::from_edge_list(&el).unwrap();
            for k in [3usize, 4] {
                assert_eq!(
                    ktruss_canonical(&g, k),
                    ktruss_gblas(&bool_adjacency(&g), k),
                    "seed {seed}, k {k}"
                );
            }
        }
    }
}
