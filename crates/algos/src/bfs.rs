//! Breadth-first search: levels and parents.
//!
//! Canonical form: expand a frontier of vertices along out-edges,
//! skipping visited vertices. Algebraic form: the frontier is a boolean
//! vector; one step is `next⟨¬visited,replace⟩ = frontier (∨,∧) A`; the
//! parent variant runs over `(min, first)` carrying vertex ids.

use std::collections::VecDeque;

use gblas::ops::{self, semiring, FnUnary};
use gblas::{Descriptor, Matrix, Vector};
use graphdata::CsrGraph;

/// Canonical vertex-centric BFS: `levels[v] = hops from source`, `None`
/// if unreachable.
pub fn bfs_levels_canonical(g: &CsrGraph, source: usize) -> Vec<Option<usize>> {
    let mut levels = vec![None; g.num_vertices()];
    levels[source] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = levels[v].expect("queued vertices have levels") + 1;
        let (targets, _) = g.neighbors(v);
        for &t in targets {
            if levels[t].is_none() {
                levels[t] = Some(next);
                queue.push_back(t);
            }
        }
    }
    levels
}

/// Linear-algebraic BFS on the adjacency matrix: frontier expansion with
/// the `(∨,∧)` semiring and a complemented visited mask.
pub fn bfs_levels_gblas(a: &Matrix<bool>, source: usize) -> Vec<Option<usize>> {
    assert_eq!(a.nrows(), a.ncols(), "adjacency must be square");
    assert!(source < a.nrows(), "source out of bounds");
    let n = a.nrows();
    let mut levels: Vector<usize> = Vector::new(n);
    levels.set(source, 0).expect("in bounds");
    let mut frontier: Vector<bool> = Vector::new(n);
    frontier.set(source, true).expect("in bounds");

    let mut depth = 0usize;
    while frontier.nvals() > 0 {
        depth += 1;
        // next<¬levels, replace> = frontier (∨,∧) A : unvisited reachable.
        let visited = levels.structure();
        let mut next: Vector<bool> = Vector::new(n);
        ops::vxm(
            &mut next,
            Some(&visited),
            None,
            &semiring::lor_land(),
            &frontier,
            a,
            Descriptor::replace().with_complement_mask(),
        )
        .expect("dimensions agree");
        // levels<next> += depth (assign the new level at the frontier).
        let d = depth;
        ops::vector_apply(
            &mut levels,
            None,
            Some(&ops::Second::<usize>::new()),
            &FnUnary::new(move |_: bool| d),
            &next,
            Descriptor::new(),
        )
        .expect("dimensions agree");
        frontier = next;
    }
    levels.to_dense()
}

/// Canonical BFS parent tree: `parent[v]` is the vertex that discovered
/// `v` (`source` maps to itself; unreached to `None`). Among candidates
/// discovered in the same level, the smallest parent id wins, matching
/// the deterministic algebraic version.
pub fn bfs_parents_canonical(g: &CsrGraph, source: usize) -> Vec<Option<usize>> {
    let n = g.num_vertices();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    parent[source] = Some(source);
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        // Gather candidate parents for this level, then commit the minimum
        // parent per vertex (the "min" tie-break of the algebraic twin).
        let mut candidate: Vec<Option<usize>> = vec![None; n];
        for &v in &frontier {
            let (targets, _) = g.neighbors(v);
            for &t in targets {
                if parent[t].is_none() {
                    candidate[t] = Some(match candidate[t] {
                        None => v,
                        Some(c) => c.min(v),
                    });
                }
            }
        }
        let mut next = Vec::new();
        for (t, cand) in candidate.into_iter().enumerate() {
            if let Some(p) = cand {
                parent[t] = Some(p);
                next.push(t);
            }
        }
        frontier = next;
    }
    parent
}

/// Algebraic BFS parent tree: the frontier carries vertex ids and expands
/// over `(min, first)` — `first` propagates the parent's id, `min`
/// tie-breaks among same-level discoverers.
pub fn bfs_parents_gblas(a: &Matrix<bool>, source: usize) -> Vec<Option<usize>> {
    assert_eq!(a.nrows(), a.ncols(), "adjacency must be square");
    let n = a.nrows();
    // Id-carrying adjacency: value irrelevant (first uses the vector side),
    // but the semiring is typed, so cast the pattern to usize.
    let mut ids: Matrix<usize> = Matrix::new(n, n);
    ops::matrix_apply(
        &mut ids,
        None,
        None,
        &FnUnary::new(|_: bool| 1usize),
        a,
        Descriptor::new(),
    )
    .expect("same dims");

    let mut parent: Vector<usize> = Vector::new(n);
    parent.set(source, source).expect("in bounds");
    let mut frontier: Vector<usize> = Vector::new(n);
    frontier.set(source, source).expect("in bounds");

    while frontier.nvals() > 0 {
        let visited = parent.structure();
        let mut next: Vector<usize> = Vector::new(n);
        ops::vxm(
            &mut next,
            Some(&visited),
            None,
            &semiring::min_first::<usize>(),
            &frontier,
            &ids,
            Descriptor::replace().with_complement_mask(),
        )
        .expect("dims agree");
        // Commit discovered parents.
        ops::vector_apply(
            &mut parent,
            None,
            Some(&ops::Second::<usize>::new()),
            &ops::Identity::<usize>::new(),
            &next,
            Descriptor::new(),
        )
        .expect("dims agree");
        // Next frontier carries each newly discovered vertex's own id.
        let mut carried: Vector<usize> = Vector::new(n);
        ops::vector_apply_indexop(
            &mut carried,
            None,
            None,
            &ops::RowIndex::<usize>::new(),
            &next,
            Descriptor::new(),
        )
        .expect("dims agree");
        frontier = carried;
    }
    parent.to_dense()
}

/// Pattern-only adjacency for BFS from a weighted CSR graph.
pub fn bool_adjacency(g: &CsrGraph) -> Matrix<bool> {
    let triples = g.iter_edges().map(|(r, c, _)| (r, c, true)).collect();
    Matrix::from_triples(g.num_vertices(), g.num_vertices(), triples)
        .expect("CSR edges are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::gen::{binary_tree, grid2d, star};
    use graphdata::EdgeList;

    fn check_equiv(g: &CsrGraph, source: usize) {
        let a = bool_adjacency(g);
        assert_eq!(
            bfs_levels_canonical(g, source),
            bfs_levels_gblas(&a, source),
            "levels diverge"
        );
        assert_eq!(
            bfs_parents_canonical(g, source),
            bfs_parents_gblas(&a, source),
            "parents diverge"
        );
    }

    #[test]
    fn tree_levels() {
        let g = CsrGraph::from_edge_list(&binary_tree(15)).unwrap();
        let levels = bfs_levels_canonical(&g, 0);
        assert_eq!(levels[0], Some(0));
        assert_eq!(levels[1], Some(1));
        assert_eq!(levels[7], Some(3));
        check_equiv(&g, 0);
    }

    #[test]
    fn grid_levels_are_manhattan() {
        let g = CsrGraph::from_edge_list(&grid2d(5, 4)).unwrap();
        let levels = bfs_levels_gblas(&bool_adjacency(&g), 0);
        assert_eq!(levels[5 * 3 + 4], Some(3 + 4));
        check_equiv(&g, 0);
        check_equiv(&g, 7);
    }

    #[test]
    fn star_single_level() {
        let g = CsrGraph::from_edge_list(&star(8)).unwrap();
        check_equiv(&g, 0);
        check_equiv(&g, 3);
    }

    #[test]
    fn disconnected_unreached_is_none() {
        let mut el = EdgeList::from_triples(vec![(0, 1, 1.0)]);
        el.ensure_vertices(4);
        let g = CsrGraph::from_edge_list(&el).unwrap();
        let levels = bfs_levels_gblas(&bool_adjacency(&g), 0);
        assert_eq!(levels, vec![Some(0), Some(1), None, None]);
        check_equiv(&g, 0);
    }

    #[test]
    fn parents_form_valid_tree() {
        let g = CsrGraph::from_edge_list(&grid2d(4, 4)).unwrap();
        let parents = bfs_parents_gblas(&bool_adjacency(&g), 0);
        let levels = bfs_levels_canonical(&g, 0);
        for v in 0..16 {
            match (parents[v], levels[v]) {
                (Some(p), Some(l)) if v != 0 => {
                    // Parent is one level above and adjacent.
                    assert_eq!(levels[p], Some(l - 1));
                    let (ts, _) = g.neighbors(p);
                    assert!(ts.contains(&v));
                }
                (Some(p), Some(0)) => assert_eq!(p, v),
                (None, None) => {}
                other => panic!("inconsistent {other:?} at {v}"),
            }
        }
    }
}
