//! Connected components (undirected graphs) by minimum-label propagation.
//!
//! Canonical form: every vertex repeatedly adopts the smallest label among
//! itself and its neighbors until nothing changes — a pure "think like a
//! vertex" algorithm (Sec. II-B). Algebraic form: one round is
//! `labels = min(labels, labels (min,second)ᵀ… )`, i.e. a `(min, first)`
//! `vxm` followed by an element-wise min, iterated to fixpoint.

use gblas::ops::{self, semiring};
use gblas::{Descriptor, Matrix, Vector};
use graphdata::CsrGraph;

/// Canonical vertex-centric label propagation. Returns `labels[v]` = the
/// smallest vertex id in `v`'s component. The graph must be symmetric for
/// the result to be the undirected components.
pub fn components_canonical(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let (targets, _) = g.neighbors(v);
            let mut best = labels[v];
            for &t in targets {
                best = best.min(labels[t]);
            }
            if best < labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
    }
    labels
}

/// Algebraic label propagation: `candidate = labels (min,first) A`, then
/// `labels = min(labels, candidate)`, until `labels` stops changing.
pub fn components_gblas(a: &Matrix<bool>) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "adjacency must be square");
    let n = a.nrows();
    // Pattern with usize domain for the (min, first) semiring.
    let mut ids: Matrix<usize> = Matrix::new(n, n);
    ops::matrix_apply(
        &mut ids,
        None,
        None,
        &ops::FnUnary::new(|_: bool| 1usize),
        a,
        Descriptor::new(),
    )
    .expect("same dims");

    let mut labels = Vector::from_entries(n, (0..n).map(|v| (v, v)).collect())
        .expect("indices in bounds");
    loop {
        let mut candidate: Vector<usize> = Vector::new(n);
        ops::vxm(
            &mut candidate,
            None,
            None,
            &semiring::min_first::<usize>(),
            &labels,
            &ids,
            Descriptor::replace(),
        )
        .expect("dims agree");
        let mut next: Vector<usize> = Vector::new(n);
        ops::ewise_add_vector(
            &mut next,
            None,
            None,
            &ops::Min::<usize>::new(),
            &labels,
            &candidate,
            Descriptor::new(),
        )
        .expect("dims agree");
        if next == labels {
            break;
        }
        labels = next;
    }
    labels.to_dense_with(0)
}

/// Number of distinct components in a label vector.
pub fn component_count(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bool_adjacency;
    use graphdata::gen::{complete, cycle, grid2d};
    use graphdata::EdgeList;

    fn symmetric(el: &mut EdgeList) -> CsrGraph {
        el.symmetrize();
        CsrGraph::from_edge_list(el).unwrap()
    }

    #[test]
    fn single_component_grid() {
        let g = CsrGraph::from_edge_list(&grid2d(4, 3)).unwrap();
        let labels = components_canonical(&g);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(component_count(&labels), 1);
        assert_eq!(components_gblas(&bool_adjacency(&g)), labels);
    }

    #[test]
    fn two_components() {
        let mut el = EdgeList::from_triples(vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let g = symmetric(&mut el);
        let labels = components_canonical(&g);
        assert_eq!(labels, vec![0, 0, 2, 2]);
        assert_eq!(components_gblas(&bool_adjacency(&g)), labels);
        assert_eq!(component_count(&labels), 2);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let mut el = EdgeList::from_triples(vec![(0, 1, 1.0)]);
        el.ensure_vertices(5);
        let g = symmetric(&mut el);
        let labels = components_gblas(&bool_adjacency(&g));
        assert_eq!(labels, vec![0, 0, 2, 3, 4]);
        assert_eq!(component_count(&labels), 4);
        assert_eq!(components_canonical(&g), labels);
    }

    #[test]
    fn cycle_and_complete_agree() {
        for el in [cycle(7), complete(5)] {
            let mut el = el;
            let g = symmetric(&mut el);
            assert_eq!(
                components_canonical(&g),
                components_gblas(&bool_adjacency(&g))
            );
        }
    }

    #[test]
    fn random_union_of_cliques() {
        // Three disjoint cliques with shuffled ids: labels must be the
        // minimum id of each clique.
        let mut el = EdgeList::new(9);
        for clique in [[0usize, 3, 6], [1, 4, 7], [2, 5, 8]] {
            for &a in &clique {
                for &b in &clique {
                    if a != b {
                        el.push(a, b, 1.0);
                    }
                }
            }
        }
        let g = CsrGraph::from_edge_list(&el).unwrap();
        let labels = components_gblas(&bool_adjacency(&g));
        assert_eq!(labels, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(components_canonical(&g), labels);
    }
}
