//! # graph-algos — the translation methodology, beyond SSSP
//!
//! The paper's thesis is a *systematic* method for translating vertex- and
//! edge-centric algorithms into GraphBLAS (Sec. II defines the patterns;
//! delta-stepping is the worked example). This crate applies the same
//! patterns to more algorithms, each in two forms:
//!
//! * a **canonical** vertex/edge-centric implementation (frontiers,
//!   adjacency lists, per-edge loops), and
//! * a **linear-algebraic** implementation on [`gblas`] (masked `vxm`/
//!   `mxm` over the appropriate semiring).
//!
//! Both forms are tested for equivalence on random and suite graphs —
//! the same validation discipline the SSSP reproduction uses.
//!
//! | algorithm | canonical pattern | algebraic pattern |
//! |---|---|---|
//! | [`bfs`] | frontier expansion over out-edges | `(∨,∧)` `vxm` with complemented visited mask |
//! | [`components`] | label propagation to neighbors | `(min, second)` `vxm` + element-wise min, to fixpoint |
//! | [`triangles`] | sorted adjacency intersection per edge | `C⟨L⟩ = L ⊕.pair Lᵀ`, reduce (Sec. II-C) |
//! | [`ktruss`] | iterative support pruning per edge | `S = (AᵀA) ∘ A` masked `mxm`, select, repeat (Sec. II-C) |

pub mod bfs;
pub mod components;
pub mod ktruss;
pub mod triangles;
